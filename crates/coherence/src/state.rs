//! Attraction-memory block states and directory entries.

use vcoma_types::NodeId;

/// State of a resident attraction-memory block (paper §4.2). Absence from
/// the AM array is the fourth state, *Invalid*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmState {
    /// A read-only copy; other copies exist, one of them is the master.
    Shared,
    /// The read-only *master* copy — the one responsible for injection on
    /// replacement and for supplying data to readers.
    MasterShared,
    /// The only copy, writable.
    Exclusive,
}

impl AmState {
    /// Returns `true` for the states that carry ownership (Master-shared or
    /// Exclusive) and therefore must be injected rather than dropped on
    /// replacement.
    pub const fn is_owner(self) -> bool {
        matches!(self, AmState::MasterShared | AmState::Exclusive)
    }

    /// Returns `true` if a local write can proceed without a coherence
    /// transaction.
    pub const fn satisfies_write(self) -> bool {
        matches!(self, AmState::Exclusive)
    }
}

impl std::fmt::Display for AmState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmState::Shared => f.write_str("S"),
            AmState::MasterShared => f.write_str("MS"),
            AmState::Exclusive => f.write_str("E"),
        }
    }
}

/// Directory entry for one block, held at the block's home node.
///
/// Tracks which nodes hold copies (as a bit mask over node indices — the
/// simulated machines are ≤ 64 nodes) and which node holds the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// Bit `i` set ⇔ node `i` holds a non-Invalid copy.
    pub copyset: u64,
    /// The node holding the Master-shared or Exclusive copy, if any copy
    /// exists.
    pub master: Option<NodeId>,
    /// The home node this entry lives at (for invariant checking).
    pub home: NodeId,
}

impl DirEntry {
    /// An entry with no copies anywhere.
    pub const fn empty(home: NodeId) -> Self {
        DirEntry { copyset: 0, master: None, home }
    }

    /// Returns `true` if `node` holds a copy.
    pub const fn holds(&self, node: NodeId) -> bool {
        self.copyset & (1 << node.index()) != 0
    }

    /// Records that `node` holds a copy.
    pub fn add(&mut self, node: NodeId) {
        self.copyset |= 1 << node.index();
    }

    /// Records that `node` no longer holds a copy.
    pub fn remove(&mut self, node: NodeId) {
        self.copyset &= !(1 << node.index());
        if self.master == Some(node) {
            self.master = None;
        }
    }

    /// Number of copies.
    pub const fn copies(&self) -> u32 {
        self.copyset.count_ones()
    }

    /// Returns `true` if no node holds a copy.
    pub const fn is_uncached(&self) -> bool {
        self.copyset == 0
    }

    /// Iterates over the holders other than `except`.
    pub fn holders_except(&self, except: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mask = self.copyset & !(1 << except.index());
        (0..64u16).filter(move |i| mask & (1 << i) != 0).map(NodeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn am_state_predicates() {
        assert!(!AmState::Shared.is_owner());
        assert!(AmState::MasterShared.is_owner());
        assert!(AmState::Exclusive.is_owner());
        assert!(AmState::Exclusive.satisfies_write());
        assert!(!AmState::MasterShared.satisfies_write());
        assert!(!AmState::Shared.satisfies_write());
    }

    #[test]
    fn am_state_display() {
        assert_eq!(AmState::Shared.to_string(), "S");
        assert_eq!(AmState::MasterShared.to_string(), "MS");
        assert_eq!(AmState::Exclusive.to_string(), "E");
    }

    #[test]
    fn dir_entry_add_remove() {
        let mut e = DirEntry::empty(NodeId::new(0));
        assert!(e.is_uncached());
        e.add(NodeId::new(3));
        e.add(NodeId::new(5));
        e.master = Some(NodeId::new(3));
        assert!(e.holds(NodeId::new(3)));
        assert!(e.holds(NodeId::new(5)));
        assert!(!e.holds(NodeId::new(4)));
        assert_eq!(e.copies(), 2);
        e.remove(NodeId::new(3));
        assert!(!e.holds(NodeId::new(3)));
        assert_eq!(e.master, None, "removing the master clears the master field");
        assert_eq!(e.copies(), 1);
    }

    #[test]
    fn holders_except_skips_the_exception() {
        let mut e = DirEntry::empty(NodeId::new(0));
        for i in [1u16, 2, 7] {
            e.add(NodeId::new(i));
        }
        let others: Vec<u16> = e.holders_except(NodeId::new(2)).map(|n| n.raw()).collect();
        assert_eq!(others, vec![1, 7]);
    }

    #[test]
    fn remove_nonholder_is_noop() {
        let mut e = DirEntry::empty(NodeId::new(0));
        e.add(NodeId::new(1));
        e.remove(NodeId::new(9));
        assert!(e.holds(NodeId::new(1)));
        assert_eq!(e.copies(), 1);
    }
}
