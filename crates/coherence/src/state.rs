//! Attraction-memory block states and directory entries.

use vcoma_types::NodeId;

/// State of a resident attraction-memory block (paper §4.2). Absence from
/// the AM array is the fourth state, *Invalid*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AmState {
    /// A read-only copy; other copies exist, one of them is the master.
    /// The default only fills vacant slots in the AM array's flat payload
    /// slab — it carries no protocol meaning.
    #[default]
    Shared,
    /// The read-only *master* copy — the one responsible for injection on
    /// replacement and for supplying data to readers.
    MasterShared,
    /// The only copy, writable.
    Exclusive,
}

impl AmState {
    /// Returns `true` for the states that carry ownership (Master-shared or
    /// Exclusive) and therefore must be injected rather than dropped on
    /// replacement.
    pub const fn is_owner(self) -> bool {
        matches!(self, AmState::MasterShared | AmState::Exclusive)
    }

    /// Returns `true` if a local write can proceed without a coherence
    /// transaction.
    pub const fn satisfies_write(self) -> bool {
        matches!(self, AmState::Exclusive)
    }
}

impl std::fmt::Display for AmState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmState::Shared => f.write_str("S"),
            AmState::MasterShared => f.write_str("MS"),
            AmState::Exclusive => f.write_str("E"),
        }
    }
}

/// The largest machine the directory can describe. One bit per node in
/// [`CopySet`]; 1024 covers every node count the scale-up experiments
/// sweep (the paper machine is 32).
pub const MAX_NODES: usize = 1024;

const COPYSET_WORDS: usize = MAX_NODES / 64;

/// The set of nodes holding a copy of one block: a fixed multi-word bit
/// mask over node indices. The single-`u64` predecessor capped machines
/// at 64 nodes; this lifts the ceiling to [`MAX_NODES`] while staying
/// `Copy` (directory entries are copied around the protocol freely).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CopySet {
    words: [u64; COPYSET_WORDS],
}

impl CopySet {
    /// The empty set.
    pub const EMPTY: CopySet = CopySet { words: [0; COPYSET_WORDS] };

    /// The singleton set `{node}`.
    pub fn only(node: NodeId) -> Self {
        let mut s = CopySet::EMPTY;
        s.insert(node);
        s
    }

    /// Adds `node` to the set.
    pub fn insert(&mut self, node: NodeId) {
        let i = node.index();
        debug_assert!(i < MAX_NODES, "node {i} beyond the {MAX_NODES}-node directory limit");
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `node` from the set (a no-op if absent).
    pub fn remove(&mut self, node: NodeId) {
        let i = node.index();
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Returns `true` if `node` is in the set.
    pub const fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of nodes in the set.
    pub const fn count(&self) -> u32 {
        let mut total = 0;
        let mut w = 0;
        while w < COPYSET_WORDS {
            total += self.words[w].count_ones();
            w += 1;
        }
        total
    }

    /// Returns `true` if the set is empty.
    pub const fn is_empty(&self) -> bool {
        let mut w = 0;
        while w < COPYSET_WORDS {
            if self.words[w] != 0 {
                return false;
            }
            w += 1;
        }
        true
    }

    /// Iterates over the members in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64usize)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| NodeId::new((w * 64 + b) as u16))
        })
    }
}

impl std::fmt::Debug for CopySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter().map(|n| n.raw())).finish()
    }
}

/// Directory entry for one block, held at the block's home node.
///
/// Tracks which nodes hold copies (as a [`CopySet`] bit mask over node
/// indices, machines up to [`MAX_NODES`] nodes) and which node holds the
/// master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// Membership ⇔ the node holds a non-Invalid copy.
    pub copyset: CopySet,
    /// The node holding the Master-shared or Exclusive copy, if any copy
    /// exists.
    pub master: Option<NodeId>,
    /// The home node this entry lives at (for invariant checking).
    pub home: NodeId,
}

impl DirEntry {
    /// An entry with no copies anywhere.
    pub const fn empty(home: NodeId) -> Self {
        DirEntry { copyset: CopySet::EMPTY, master: None, home }
    }

    /// Returns `true` if `node` holds a copy.
    pub const fn holds(&self, node: NodeId) -> bool {
        self.copyset.contains(node)
    }

    /// Records that `node` holds a copy.
    pub fn add(&mut self, node: NodeId) {
        self.copyset.insert(node);
    }

    /// Records that `node` no longer holds a copy.
    pub fn remove(&mut self, node: NodeId) {
        self.copyset.remove(node);
        if self.master == Some(node) {
            self.master = None;
        }
    }

    /// Number of copies.
    pub const fn copies(&self) -> u32 {
        self.copyset.count()
    }

    /// Returns `true` if no node holds a copy.
    pub const fn is_uncached(&self) -> bool {
        self.copyset.is_empty()
    }

    /// Iterates over the holders other than `except`.
    pub fn holders_except(&self, except: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.copyset.iter().filter(move |n| *n != except)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn am_state_predicates() {
        assert!(!AmState::Shared.is_owner());
        assert!(AmState::MasterShared.is_owner());
        assert!(AmState::Exclusive.is_owner());
        assert!(AmState::Exclusive.satisfies_write());
        assert!(!AmState::MasterShared.satisfies_write());
        assert!(!AmState::Shared.satisfies_write());
    }

    #[test]
    fn am_state_display() {
        assert_eq!(AmState::Shared.to_string(), "S");
        assert_eq!(AmState::MasterShared.to_string(), "MS");
        assert_eq!(AmState::Exclusive.to_string(), "E");
    }

    #[test]
    fn dir_entry_add_remove() {
        let mut e = DirEntry::empty(NodeId::new(0));
        assert!(e.is_uncached());
        e.add(NodeId::new(3));
        e.add(NodeId::new(5));
        e.master = Some(NodeId::new(3));
        assert!(e.holds(NodeId::new(3)));
        assert!(e.holds(NodeId::new(5)));
        assert!(!e.holds(NodeId::new(4)));
        assert_eq!(e.copies(), 2);
        e.remove(NodeId::new(3));
        assert!(!e.holds(NodeId::new(3)));
        assert_eq!(e.master, None, "removing the master clears the master field");
        assert_eq!(e.copies(), 1);
    }

    #[test]
    fn holders_except_skips_the_exception() {
        let mut e = DirEntry::empty(NodeId::new(0));
        for i in [1u16, 2, 7] {
            e.add(NodeId::new(i));
        }
        let others: Vec<u16> = e.holders_except(NodeId::new(2)).map(|n| n.raw()).collect();
        assert_eq!(others, vec![1, 7]);
    }

    #[test]
    fn copyset_scales_past_64_nodes() {
        // Regression: the single-u64 predecessor overflowed its shift at
        // node 64 and capped the directory at 64-node machines.
        let mut e = DirEntry::empty(NodeId::new(0));
        for i in [0u16, 63, 64, 255, 1023] {
            e.add(NodeId::new(i));
            assert!(e.holds(NodeId::new(i)), "node {i}");
        }
        assert_eq!(e.copies(), 5);
        let all: Vec<u16> = e.copyset.iter().map(|n| n.raw()).collect();
        assert_eq!(all, vec![0, 63, 64, 255, 1023], "ascending node order");
        let others: Vec<u16> = e.holders_except(NodeId::new(255)).map(|n| n.raw()).collect();
        assert_eq!(others, vec![0, 63, 64, 1023]);
        e.remove(NodeId::new(64));
        assert!(!e.holds(NodeId::new(64)));
        assert_eq!(e.copies(), 4);
        assert_eq!(format!("{:?}", CopySet::only(NodeId::new(100))), "{100}");
    }

    #[test]
    fn remove_nonholder_is_noop() {
        let mut e = DirEntry::empty(NodeId::new(0));
        e.add(NodeId::new(1));
        e.remove(NodeId::new(9));
        assert!(e.holds(NodeId::new(1)));
        assert_eq!(e.copies(), 1);
    }
}
