//! The COMA-F cache-coherence protocol with attraction-memory injection.
//!
//! This crate implements the flat-COMA write-invalidate protocol the paper
//! builds on (Joe's COMA-F \[16\], extended in §4.2): each attraction-memory
//! block is in one of four states (*Invalid*, *Shared*, *Master-shared*,
//! *Exclusive*), a per-block directory entry at the block's **home node**
//! tracks the copy set and the master copy, and replacement of a master or
//! exclusive copy **injects** the block back into the machine — first at the
//! home, then forwarded to random nodes until someone has room (§4.2).
//!
//! The protocol is address-space agnostic: it operates on block numbers and
//! a caller-supplied home node per block. The `L0`–`L3` schemes run it on
//! physical block numbers with homes derived from the round-robin frame
//! assignment; V-COMA runs it on virtual block numbers with homes derived
//! from the virtual page number. The V-COMA twist — translating the virtual
//! address to a *directory address* at the home, through the DLB — plugs in
//! through the [`HomeTranslation`] trait, whose cost is charged on the
//! critical path of every home lookup exactly as in Figure 7 of the paper.
//!
//! # Example
//!
//! ```
//! use vcoma_coherence::{Protocol, NullTranslation};
//! use vcoma_net::Crossbar;
//! use vcoma_types::{MachineConfig, NodeId, Timing};
//!
//! let cfg = MachineConfig::tiny();
//! let mut net = Crossbar::new(cfg.nodes, Timing::paper());
//! let mut xl = NullTranslation;
//! let mut p = Protocol::new(&cfg, 1);
//! let home = NodeId::new(0);
//! p.preload(7, home);
//! // Node 2 reads block 7: a remote miss served by the home's master copy.
//! let out = p.read(NodeId::new(2), 7, home, &mut net, &mut xl, 0);
//! assert!(!out.local_hit);
//! assert!(out.latency > 0);
//! // A second read hits the freshly installed Shared copy.
//! assert!(p.read(NodeId::new(2), 7, home, &mut net, &mut xl, 0).local_hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod protocol;
mod state;
mod stats;
mod translation;

pub use protocol::{Access, InjectionPolicy, Protocol, TxnHop};
pub use state::{AmState, CopySet, DirEntry, MAX_NODES};
pub use stats::ProtocolStats;
pub use translation::{HomeTranslation, NullTranslation};
