//! The home-node translation hook.

use vcoma_types::NodeId;

/// Cost model for the directory lookup performed at a home node.
///
/// Every protocol request that reaches a home node must locate the block's
/// directory entry. How expensive that is depends on the scheme:
///
/// * In the physical schemes (`L0`–`L3`) the directory is indexed directly
///   by the physical address — zero extra cost ([`NullTranslation`]).
/// * In V-COMA the home must translate the *virtual* address into a
///   directory address through its DLB (paper §4.2, Figure 7); a DLB miss
///   costs the paper's 40-cycle service time and is what Table 2's V-COMA
///   columns count.
///
/// The simulator implements this trait over its per-node DLBs; the protocol
/// calls it on the critical path of every home lookup.
pub trait HomeTranslation {
    /// Performs the directory lookup for `block` at `home`; returns the
    /// extra cycles it costs beyond the bare directory access.
    fn home_lookup(&mut self, home: NodeId, block: u64) -> u64;
}

/// Free home lookups: the physical directory of `L0`–`L3`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTranslation;

impl HomeTranslation for NullTranslation {
    fn home_lookup(&mut self, _home: NodeId, _block: u64) -> u64 {
        0
    }
}

impl<T: HomeTranslation + ?Sized> HomeTranslation for &mut T {
    fn home_lookup(&mut self, home: NodeId, block: u64) -> u64 {
        (**self).home_lookup(home, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_translation_is_free() {
        let mut t = NullTranslation;
        assert_eq!(t.home_lookup(NodeId::new(0), 42), 0);
    }

    #[test]
    fn blanket_impl_forwards() {
        struct Fixed(u64);
        impl HomeTranslation for Fixed {
            fn home_lookup(&mut self, _h: NodeId, _b: u64) -> u64 {
                self.0
            }
        }
        let mut f = Fixed(40);
        let r: &mut dyn HomeTranslation = &mut f;
        assert_eq!(r.home_lookup(NodeId::new(1), 0), 40);
    }
}
