//! Figure 9: direct-mapped vs fully-associative TLB/DLB.

#[cfg(feature = "criterion-benches")]
use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::fig9;

fn print_artifact() {
    println!("\n=== Figure 9 (smoke scale): direct-mapped vs fully-associative ===");
    let panels = fig9::run(&print_config());
    for panel in &panels {
        println!("{}", fig9::render(panel).render());
    }
    // The paper's headline: the DM/FA gap shrinks with the level.
    for panel in &panels {
        let gaps: Vec<String> = panel
            .curves
            .iter()
            .map(|c| format!("{} {:.2}x", c.scheme.label(), c.mean_gap()))
            .collect();
        println!("{}: mean DM/FA gap: {}", panel.benchmark, gaps.join(", "));
    }
}

#[cfg(feature = "criterion-benches")]
fn bench(c: &mut Criterion) {
    print_artifact();

    let cfg = bench_config();
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("dm_vs_fa_grid", |b| b.iter(|| fig9::run(&cfg)));
    g.finish();
}

#[cfg(feature = "criterion-benches")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-benches")]
criterion_main!(benches);

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    print_artifact();

    let cfg = bench_config();
    vcoma_bench::plain_bench("fig9/dm_vs_fa_grid", 10, || {
        std::hint::black_box(fig9::run(&cfg));
    });
}
