//! Table 3: the TLB size equivalent to an 8-entry DLB.

use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::table3;

fn bench(c: &mut Criterion) {
    println!("\n=== Table 3 (smoke scale): TLB size equivalent to an 8-entry DLB ===");
    println!("{}", table3::render(&table3::run(&print_config())).render());

    let cfg = bench_config();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("equivalence_search", |b| b.iter(|| table3::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
