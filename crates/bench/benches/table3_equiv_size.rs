//! Table 3: the TLB size equivalent to an 8-entry DLB.

#[cfg(feature = "criterion-benches")]
use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::table3;

fn print_artifact() {
    println!("\n=== Table 3 (smoke scale): TLB size equivalent to an 8-entry DLB ===");
    println!("{}", table3::render(&table3::run(&print_config())).render());
}

#[cfg(feature = "criterion-benches")]
fn bench(c: &mut Criterion) {
    print_artifact();

    let cfg = bench_config();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("equivalence_search", |b| b.iter(|| table3::run(&cfg)));
    g.finish();
}

#[cfg(feature = "criterion-benches")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-benches")]
criterion_main!(benches);

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    print_artifact();

    let cfg = bench_config();
    vcoma_bench::plain_bench("table3/equivalence_search", 10, || {
        std::hint::black_box(table3::run(&cfg));
    });
}
