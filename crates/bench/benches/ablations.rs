//! Ablations: injection policy, crossbar contention and page coloring
//! (DESIGN.md §5).

#[cfg(feature = "criterion-benches")]
use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::{ablations, ccnuma};

fn print_artifact() {
    println!("\n=== Ablations (smoke scale) ===");
    let pc = print_config();
    let mut rows = ablations::contention(&pc);
    rows.extend(ablations::coloring(&pc));
    rows.extend(ablations::injection(&pc));
    rows.extend(ablations::software_managed(&pc));
    println!("{}", ablations::render(&rows).render());
    println!("CC-NUMA motivation (paper §2):");
    println!("{}", ccnuma::render(&ccnuma::run(&pc)).render());
}

#[cfg(feature = "criterion-benches")]
fn bench(c: &mut Criterion) {
    print_artifact();

    let cfg = bench_config();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("contention", |b| b.iter(|| ablations::contention(&cfg)));
    g.bench_function("coloring", |b| b.iter(|| ablations::coloring(&cfg)));
    g.bench_function("injection", |b| b.iter(|| ablations::injection(&cfg)));
    g.bench_function("software_managed", |b| b.iter(|| ablations::software_managed(&cfg)));
    g.bench_function("ccnuma_motivation", |b| b.iter(|| ccnuma::run(&cfg)));
    g.finish();
}

#[cfg(feature = "criterion-benches")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-benches")]
criterion_main!(benches);

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    print_artifact();

    let cfg = bench_config();
    vcoma_bench::plain_bench("ablations/contention", 10, || {
        std::hint::black_box(ablations::contention(&cfg));
    });
    vcoma_bench::plain_bench("ablations/coloring", 10, || {
        std::hint::black_box(ablations::coloring(&cfg));
    });
    vcoma_bench::plain_bench("ablations/injection", 10, || {
        std::hint::black_box(ablations::injection(&cfg));
    });
    vcoma_bench::plain_bench("ablations/software_managed", 10, || {
        std::hint::black_box(ablations::software_managed(&cfg));
    });
    vcoma_bench::plain_bench("ablations/ccnuma_motivation", 10, || {
        std::hint::black_box(ccnuma::run(&cfg));
    });
}
