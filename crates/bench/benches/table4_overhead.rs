//! Table 4: translation time / total stall time.

#[cfg(feature = "criterion-benches")]
use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::table4;

fn print_artifact() {
    println!("\n=== Table 4 (smoke scale): translation time / stall time (%) ===");
    println!("{}", table4::render(&table4::run(&print_config())).render());
}

#[cfg(feature = "criterion-benches")]
fn bench(c: &mut Criterion) {
    print_artifact();

    let cfg = bench_config();
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("overhead_ratios", |b| b.iter(|| table4::run(&cfg)));
    g.finish();
}

#[cfg(feature = "criterion-benches")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-benches")]
criterion_main!(benches);

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    print_artifact();

    let cfg = bench_config();
    vcoma_bench::plain_bench("table4/overhead_ratios", 10, || {
        std::hint::black_box(table4::run(&cfg));
    });
}
