//! Table 4: translation time / total stall time.

use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::table4;

fn bench(c: &mut Criterion) {
    println!("\n=== Table 4 (smoke scale): translation time / stall time (%) ===");
    println!("{}", table4::render(&table4::run(&print_config())).render());

    let cfg = bench_config();
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("overhead_ratios", |b| b.iter(|| table4::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
