//! Figure 11: global-page-set pressure profiles.

use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::fig11;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 11 (smoke scale): pressure profiles ===");
    println!("{}", fig11::render(&fig11::run(&print_config())).render());

    let cfg = bench_config();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("pressure_profiles", |b| b.iter(|| fig11::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
