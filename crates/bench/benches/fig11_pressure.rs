//! Figure 11: global-page-set pressure profiles.

#[cfg(feature = "criterion-benches")]
use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::fig11;

fn print_artifact() {
    println!("\n=== Figure 11 (smoke scale): pressure profiles ===");
    println!("{}", fig11::render(&fig11::run(&print_config())).render());
}

#[cfg(feature = "criterion-benches")]
fn bench(c: &mut Criterion) {
    print_artifact();

    let cfg = bench_config();
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("pressure_profiles", |b| b.iter(|| fig11::run(&cfg)));
    g.finish();
}

#[cfg(feature = "criterion-benches")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-benches")]
criterion_main!(benches);

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    print_artifact();

    let cfg = bench_config();
    vcoma_bench::plain_bench("fig11/pressure_profiles", 10, || {
        std::hint::black_box(fig11::run(&cfg));
    });
}
