//! Table 1: benchmark parameters and trace-generation throughput.

#[cfg(feature = "criterion-benches")]
use criterion::{criterion_group, criterion_main, Criterion};
use vcoma::workloads::by_name;
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::table1;

fn print_artifact() {
    println!("\n=== Table 1 (smoke scale): benchmark parameters ===");
    println!("{}", table1::render(&table1::run(&print_config())).render());
}

#[cfg(feature = "criterion-benches")]
fn bench(c: &mut Criterion) {
    print_artifact();

    let cfg = bench_config();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("summarise_traces", |b| b.iter(|| table1::run(&cfg)));
    for name in ["RADIX", "FFT", "OCEAN"] {
        let w = by_name(name, cfg.scale).expect("known benchmark");
        g.bench_function(format!("generate_{name}"), |b| {
            b.iter(|| w.generate(&cfg.machine))
        });
    }
    g.finish();
}

#[cfg(feature = "criterion-benches")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-benches")]
criterion_main!(benches);

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    print_artifact();

    let cfg = bench_config();
    vcoma_bench::plain_bench("table1/summarise_traces", 10, || {
        std::hint::black_box(table1::run(&cfg));
    });
    for name in ["RADIX", "FFT", "OCEAN"] {
        let w = by_name(name, cfg.scale).expect("known benchmark");
        vcoma_bench::plain_bench(&format!("table1/generate_{name}"), 10, || {
            std::hint::black_box(w.generate(&cfg.machine));
        });
    }
}
