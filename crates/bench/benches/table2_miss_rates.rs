//! Table 2: TLB/DLB miss rates per processor reference.

use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::table2;

fn bench(c: &mut Criterion) {
    println!("\n=== Table 2 (smoke scale): miss rates per processor reference (%) ===");
    println!("{}", table2::render(&table2::run(&print_config())).render());

    let cfg = bench_config();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("five_scheme_grid", |b| b.iter(|| table2::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
