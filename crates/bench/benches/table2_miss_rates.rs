//! Table 2: TLB/DLB miss rates per processor reference.

#[cfg(feature = "criterion-benches")]
use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::table2;

fn print_artifact() {
    println!("\n=== Table 2 (smoke scale): miss rates per processor reference (%) ===");
    println!("{}", table2::render(&table2::run(&print_config())).render());
}

#[cfg(feature = "criterion-benches")]
fn bench(c: &mut Criterion) {
    print_artifact();

    let cfg = bench_config();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("five_scheme_grid", |b| b.iter(|| table2::run(&cfg)));
    g.finish();
}

#[cfg(feature = "criterion-benches")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-benches")]
criterion_main!(benches);

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    print_artifact();

    let cfg = bench_config();
    vcoma_bench::plain_bench("table2/five_scheme_grid", 10, || {
        std::hint::black_box(table2::run(&cfg));
    });
}
