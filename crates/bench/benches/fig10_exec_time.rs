//! Figure 10: execution-time breakdown per node.

use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::fig10;

fn bench(c: &mut Criterion) {
    println!("\n=== Figure 10 (smoke scale): execution-time breakdown ===");
    for panel in fig10::run(&print_config()) {
        println!("{}", fig10::render(&panel).render());
    }

    let cfg = bench_config();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("breakdown_bars", |b| b.iter(|| fig10::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
