//! Figure 10: execution-time breakdown per node.

#[cfg(feature = "criterion-benches")]
use criterion::{criterion_group, criterion_main, Criterion};
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::fig10;

fn print_artifact() {
    println!("\n=== Figure 10 (smoke scale): execution-time breakdown ===");
    for panel in fig10::run(&print_config()) {
        println!("{}", fig10::render(&panel).render());
    }
}

#[cfg(feature = "criterion-benches")]
fn bench(c: &mut Criterion) {
    print_artifact();

    let cfg = bench_config();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("breakdown_bars", |b| b.iter(|| fig10::run(&cfg)));
    g.finish();
}

#[cfg(feature = "criterion-benches")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-benches")]
criterion_main!(benches);

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    print_artifact();

    let cfg = bench_config();
    vcoma_bench::plain_bench("fig10/breakdown_bars", 10, || {
        std::hint::black_box(fig10::run(&cfg));
    });
}
