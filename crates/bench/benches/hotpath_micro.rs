//! Hot-path micro-benchmarks: TLB lookup, FLC/SLC probe, and the full
//! per-reference access path, isolated from artifact generation.
//!
//! These track the cost of the struct-of-arrays cache layout and the
//! precomputed per-scheme path tables. Compare against `cargo run -p
//! vcoma-experiments -- bench` (whole-sweep cycles/s) when evaluating a
//! hot-path change: the sweep gives the end-to-end number, these show
//! which layer moved.

#[cfg(feature = "criterion-benches")]
use criterion::{criterion_group, criterion_main, Criterion};
use vcoma::Scheme;
use vcoma_bench::micro;

const TLB_ITERS: u64 = 200_000;
const CACHE_ITERS: u64 = 200_000;
const E2E_REFS: u64 = 20_000;

fn print_artifact() {
    println!("\n=== Hot-path micro checksums ===");
    println!("tlb_lookup({TLB_ITERS}) = {}", micro::tlb_lookup(TLB_ITERS));
    println!("cache_probe({CACHE_ITERS}) = {}", micro::cache_probe(CACHE_ITERS));
    println!("end_to_end({E2E_REFS}, v_coma) = {}", micro::end_to_end(E2E_REFS, Scheme::V_COMA));
    println!("end_to_end({E2E_REFS}, l0_tlb) = {}", micro::end_to_end(E2E_REFS, Scheme::L0_TLB));
}

#[cfg(feature = "criterion-benches")]
fn bench(c: &mut Criterion) {
    print_artifact();

    let mut g = c.benchmark_group("hotpath_micro");
    g.sample_size(20);
    g.bench_function("tlb_lookup", |b| b.iter(|| micro::tlb_lookup(TLB_ITERS)));
    g.bench_function("cache_probe", |b| b.iter(|| micro::cache_probe(CACHE_ITERS)));
    g.bench_function("access_v_coma", |b| b.iter(|| micro::end_to_end(E2E_REFS, Scheme::V_COMA)));
    g.bench_function("access_l0_tlb", |b| b.iter(|| micro::end_to_end(E2E_REFS, Scheme::L0_TLB)));
    g.finish();
}

#[cfg(feature = "criterion-benches")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-benches")]
criterion_main!(benches);

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    print_artifact();

    vcoma_bench::plain_bench("hotpath_micro/tlb_lookup", 20, || {
        std::hint::black_box(micro::tlb_lookup(TLB_ITERS));
    });
    vcoma_bench::plain_bench("hotpath_micro/cache_probe", 20, || {
        std::hint::black_box(micro::cache_probe(CACHE_ITERS));
    });
    vcoma_bench::plain_bench("hotpath_micro/access_v_coma", 20, || {
        std::hint::black_box(micro::end_to_end(E2E_REFS, Scheme::V_COMA));
    });
    vcoma_bench::plain_bench("hotpath_micro/access_l0_tlb", 20, || {
        std::hint::black_box(micro::end_to_end(E2E_REFS, Scheme::L0_TLB));
    });
}
