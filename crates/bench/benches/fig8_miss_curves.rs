//! Figure 8: translation misses per node vs TLB/DLB size.
//!
//! Prints every benchmark's panel once, then measures regenerating a
//! reduced two-scheme grid.

#[cfg(feature = "criterion-benches")]
use criterion::{criterion_group, criterion_main, Criterion};
use vcoma::Scheme;
use vcoma_bench::{bench_config, print_config};
use vcoma_experiments::fig8;

fn print_artifact() {
    println!("\n=== Figure 8 (smoke scale): translation misses/node vs TLB/DLB size ===");
    for panel in fig8::run(&print_config()) {
        println!("{}", fig8::render(&panel).render());
    }
}

#[cfg(feature = "criterion-benches")]
fn bench(c: &mut Criterion) {
    print_artifact();

    let cfg = bench_config();
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("two_scheme_grid", |b| {
        b.iter(|| fig8::run_schemes(&cfg, &[Scheme::L0_TLB, Scheme::V_COMA]))
    });
    g.finish();
}

#[cfg(feature = "criterion-benches")]
criterion_group!(benches, bench);
#[cfg(feature = "criterion-benches")]
criterion_main!(benches);

#[cfg(not(feature = "criterion-benches"))]
fn main() {
    print_artifact();

    let cfg = bench_config();
    vcoma_bench::plain_bench("fig8/two_scheme_grid", 10, || {
        std::hint::black_box(fig8::run_schemes(&cfg, &[Scheme::L0_TLB, Scheme::V_COMA]));
    });
}
