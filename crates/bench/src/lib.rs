//! Shared helpers for the Criterion benchmarks.
//!
//! Each bench in `benches/` regenerates one of the paper's tables or
//! figures through the `vcoma-experiments` entry points, prints the
//! rendered artifact once (so `cargo bench` output doubles as a miniature
//! reproduction report), and then measures the regeneration time at a
//! reduced scale.

use vcoma_experiments::ExperimentConfig;

/// The configuration used by the benches: the paper machine at a very
/// small workload scale, so a full `cargo bench --workspace` stays within
/// minutes.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::smoke().with_scale(0.004)
}

/// A slightly larger configuration for the one-shot artifact print.
pub fn print_config() -> ExperimentConfig {
    ExperimentConfig::smoke()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_small() {
        assert!(bench_config().scale < print_config().scale);
        assert_eq!(bench_config().machine.nodes, 32);
    }
}
