//! Shared helpers for the Criterion benchmarks.
//!
//! Each bench in `benches/` regenerates one of the paper's tables or
//! figures through the `vcoma-experiments` entry points, prints the
//! rendered artifact once (so `cargo bench` output doubles as a miniature
//! reproduction report), and then measures the regeneration time at a
//! reduced scale.

use vcoma_experiments::ExperimentConfig;

/// The configuration used by the benches: the paper machine at a very
/// small workload scale, so a full `cargo bench --workspace` stays within
/// minutes.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::smoke().with_scale(0.004)
}

/// A slightly larger configuration for the one-shot artifact print.
pub fn print_config() -> ExperimentConfig {
    ExperimentConfig::smoke()
}

/// Minimal wall-clock harness used when the `criterion-benches` feature is
/// off: one warmup run, then `samples` timed runs, printing mean/min/max
/// milliseconds in the same spirit as the Criterion output.
pub fn plain_bench<F: FnMut()>(label: &str, samples: u32, mut f: F) {
    f();
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples.max(1) {
        let t0 = std::time::Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("bench {label}: mean {mean:.3} ms, min {min:.3} ms, max {max:.3} ms ({} samples)", times.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_small() {
        assert!(bench_config().scale < print_config().scale);
        assert_eq!(bench_config().machine.nodes, 32);
    }
}
