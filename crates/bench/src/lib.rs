//! Shared helpers for the Criterion benchmarks.
//!
//! Each bench in `benches/` regenerates one of the paper's tables or
//! figures through the `vcoma-experiments` entry points, prints the
//! rendered artifact once (so `cargo bench` output doubles as a miniature
//! reproduction report), and then measures the regeneration time at a
//! reduced scale.

use vcoma_experiments::ExperimentConfig;

/// The configuration used by the benches: the paper machine at a very
/// small workload scale, so a full `cargo bench --workspace` stays within
/// minutes.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::smoke().with_scale(0.004)
}

/// A slightly larger configuration for the one-shot artifact print.
pub fn print_config() -> ExperimentConfig {
    ExperimentConfig::smoke()
}

/// Minimal wall-clock harness used when the `criterion-benches` feature is
/// off: one warmup run, then `samples` timed runs, printing mean/min/max
/// milliseconds in the same spirit as the Criterion output.
pub fn plain_bench<F: FnMut()>(label: &str, samples: u32, mut f: F) {
    f();
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples.max(1) {
        let t0 = std::time::Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("bench {label}: mean {mean:.3} ms, min {min:.3} ms, max {max:.3} ms ({} samples)", times.len());
}

/// Micro-benchmark kernels for the per-access hot path.
///
/// Each kernel is a deterministic closed loop over one layer of the
/// simulator — TLB lookup, FLC/SLC probe, and the full
/// `Machine::access` path — returning a checksum so the optimizer
/// cannot discard the work and so the smoke test can pin the result.
/// The `hotpath_micro` bench target times them; `cargo test` runs them
/// once at a small iteration count.
pub mod micro {
    use vcoma::cachesim::{Flc, Slc};
    use vcoma::{
        AccessKind, DetRng, Machine, MachineConfig, Op, Scheme, SimConfig, Tlb, TlbOrg, VAddr,
        VPage,
    };

    /// Pages in the TLB kernel's working set: 1.5x the TLB's capacity,
    /// so the stream mixes hits, capacity misses, and refills.
    const TLB_WORKING_SET: usize = 96;

    /// Random lookups against a 64-entry fully-associative TLB.
    /// Returns hits plus misses (equal to `iters`, but computed from the
    /// TLB's own counters so the loop cannot be elided).
    pub fn tlb_lookup(iters: u64) -> u64 {
        let mut tlb = Tlb::new(64, TlbOrg::FullyAssociative, 7);
        let mut rng = DetRng::new(42);
        let mut hits = 0u64;
        for _ in 0..iters {
            let page = VPage::new(rng.gen_index(TLB_WORKING_SET) as u64);
            hits += u64::from(tlb.translate(page));
        }
        hits + tlb.stats().misses
    }

    /// Mixed read/write probes against the tiny machine's FLC + SLC pair,
    /// over twice the SLC's block capacity so both levels keep evicting.
    pub fn cache_probe(iters: u64) -> u64 {
        let m = MachineConfig::tiny();
        let mut flc = Flc::new(m.flc);
        let mut slc = Slc::new(m.slc);
        let working_set = 2 * (m.slc.size_bytes / m.slc.block_size) as usize;
        let mut rng = DetRng::new(9);
        let mut hits = 0u64;
        for i in 0..iters {
            let block = rng.gen_index(working_set) as u64;
            let flc_hit = if i % 4 == 0 {
                flc.write(block).is_hit()
            } else {
                flc.read(block).is_hit()
            };
            hits += u64::from(flc_hit);
            if !flc_hit {
                let kind = if i % 4 == 0 { AccessKind::Write } else { AccessKind::Read };
                hits += u64::from(slc.access(block, kind).hit);
            }
        }
        hits
    }

    /// The full `Machine::access` path on the tiny 4-node machine: every
    /// node replays a trace mixing a hot shared region with a private
    /// strided region. Returns simulated exec time plus total refs.
    pub fn end_to_end(refs_per_node: u64, scheme: Scheme) -> u64 {
        let m = MachineConfig::tiny();
        let page = m.page_size;
        let nodes = m.nodes;
        let cfg = SimConfig::new(m, scheme).with_seed(11);
        let mut traces = Vec::with_capacity(nodes as usize);
        for n in 0..nodes {
            let mut rng = DetRng::new(0xB0B + n);
            let ops = (0..refs_per_node)
                .map(|i| {
                    let addr = if i % 7 == 0 {
                        // Hot region shared by all nodes: drives coherence.
                        VAddr::new(rng.gen_index(64) as u64 * 32)
                    } else {
                        // Private strided region, two pages per node.
                        VAddr::new(page * (n + 4) * 2 + (i * 32) % (page * 2))
                    };
                    if i % 5 == 0 {
                        Op::Write(addr)
                    } else {
                        Op::Read(addr)
                    }
                })
                .collect();
            traces.push(ops);
        }
        let report = Machine::new(cfg).run(traces).expect("micro-bench trace replays");
        report.exec_time() + report.total_refs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma::Scheme;

    #[test]
    fn configs_are_small() {
        assert!(bench_config().scale < print_config().scale);
        assert_eq!(bench_config().machine.nodes, 32);
    }

    #[test]
    fn micro_kernels_run_and_are_deterministic() {
        // Smoke for the plain-timer fallback path: every kernel the
        // hotpath_micro bench target times must run and give the same
        // checksum twice (the harness relies on run-to-run determinism).
        let tlb = micro::tlb_lookup(20_000);
        assert!(tlb >= 20_000, "hits + misses covers every lookup");
        assert_eq!(tlb, micro::tlb_lookup(20_000));

        let cache = micro::cache_probe(20_000);
        assert!(cache > 0);
        assert_eq!(cache, micro::cache_probe(20_000));

        let e2e = micro::end_to_end(1_000, Scheme::V_COMA);
        assert!(e2e > 4_000, "exec time plus 4 nodes x 1000 refs");
        assert_eq!(e2e, micro::end_to_end(1_000, Scheme::V_COMA));
        assert!(micro::end_to_end(1_000, Scheme::L0_TLB) > 4_000);
    }

    #[test]
    fn plain_bench_runs_the_closure() {
        let mut calls = 0u32;
        plain_bench("test-label", 3, || calls += 1);
        assert_eq!(calls, 4, "one warmup plus three samples");
    }
}
