//! Core types shared by every crate of the V-COMA simulator workspace.
//!
//! This crate reproduces the vocabulary of *Options for Dynamic Address
//! Translation in COMAs* (Qiu & Dubois, 1998): virtual and physical
//! addresses, node identifiers, the simulated machine's geometry
//! ([`MachineConfig`]), the fixed-latency timing model ([`Timing`]), the
//! memory operations replayed by the simulator ([`Op`]), and a deterministic
//! pseudo-random number generator ([`DetRng`]) so that every simulation run
//! is exactly reproducible from its seed.
//!
//! # Example
//!
//! ```
//! use vcoma_types::{MachineConfig, VAddr, NodeId};
//!
//! let cfg = MachineConfig::paper_baseline();
//! assert_eq!(cfg.nodes, 32);
//! // The home node of a virtual page is given by its low page-number bits.
//! let va = VAddr::new(0x4000); // page 4
//! assert_eq!(cfg.home_of_vaddr(va), NodeId::new(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod config;
mod error;
mod op;
mod protection;
mod rng;
mod source;

pub use addr::{BlockAddr, DirAddr, PAddr, PFrame, VAddr, VPage};
pub use config::{CacheGeometry, MachineConfig, MachineConfigBuilder, Timing};
pub use error::ConfigError;
pub use op::{AccessKind, Op, SyncId};
pub use protection::Protection;
pub use rng::DetRng;
pub use source::{materialize, sources_from_traces, Materialized, OpSource};

/// Identifier of a processing node in the simulated machine.
///
/// Nodes are numbered densely from `0` to `nodes - 1`.
///
/// ```
/// use vcoma_types::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node identifier from a dense index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node as a `usize`, suitable for
    /// indexing per-node vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as `u16`.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(17);
        assert_eq!(n.index(), 17);
        assert_eq!(n.raw(), 17);
        assert_eq!(NodeId::from(17u16), n);
        assert_eq!(n.to_string(), "n17");
    }

    #[test]
    fn node_id_ordering() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NodeId>();
        assert_send_sync::<VAddr>();
        assert_send_sync::<PAddr>();
        assert_send_sync::<MachineConfig>();
        assert_send_sync::<DetRng>();
        assert_send_sync::<Op>();
    }
}
