//! Address newtypes.
//!
//! The simulator distinguishes four address spaces that the paper treats as
//! distinct concepts:
//!
//! * [`VAddr`] — a byte address in the global, segmented (synonym-free)
//!   virtual address space that the processors issue.
//! * [`PAddr`] — a byte address in the linear physical address space used by
//!   the `L0`–`L3` schemes. V-COMA has no physical addresses at all.
//! * [`DirAddr`] — an address in the *directory address space* of V-COMA: the
//!   index of a directory entry inside the home node's directory memory.
//! * [`BlockAddr`] — an address quantised to an attraction-memory block,
//!   tagged with the address space it came from; the coherence protocol is
//!   generic over which space it runs in.
//!
//! Page- and block-number newtypes ([`VPage`], [`PFrame`]) avoid mixing up
//! byte addresses with page indices, which was a recurring source of bugs in
//! early COMA simulators.

/// A byte address in the global virtual address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(u64);

impl VAddr {
    /// Creates a virtual address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        VAddr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the virtual page number for pages of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `page_size` is a power of two.
    pub fn page(self, page_size: u64) -> VPage {
        debug_assert!(page_size.is_power_of_two());
        VPage(self.0 / page_size)
    }

    /// Returns the byte offset within the page.
    pub fn page_offset(self, page_size: u64) -> u64 {
        self.0 & (page_size - 1)
    }

    /// Returns the block number for blocks of `block_size` bytes.
    pub fn block(self, block_size: u64) -> u64 {
        debug_assert!(block_size.is_power_of_two());
        self.0 / block_size
    }

    /// Returns the address rounded down to a multiple of `align`.
    pub fn align_down(self, align: u64) -> VAddr {
        debug_assert!(align.is_power_of_two());
        VAddr(self.0 & !(align - 1))
    }

    /// Returns the address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> VAddr {
        VAddr(self.0 + bytes)
    }
}

impl std::fmt::Display for VAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v:{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for VAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for VAddr {
    fn from(raw: u64) -> Self {
        VAddr(raw)
    }
}

/// A byte address in the linear physical address space (L0–L3 schemes only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(u64);

impl PAddr {
    /// Creates a physical address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        PAddr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the physical frame number for frames of `page_size` bytes.
    pub fn frame(self, page_size: u64) -> PFrame {
        debug_assert!(page_size.is_power_of_two());
        PFrame(self.0 / page_size)
    }

    /// Returns the byte offset within the frame.
    pub fn page_offset(self, page_size: u64) -> u64 {
        self.0 & (page_size - 1)
    }

    /// Returns the block number for blocks of `block_size` bytes.
    pub fn block(self, block_size: u64) -> u64 {
        debug_assert!(block_size.is_power_of_two());
        self.0 / block_size
    }
}

impl std::fmt::Display for PAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for PAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PAddr {
    fn from(raw: u64) -> Self {
        PAddr(raw)
    }
}

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VPage(u64);

impl VPage {
    /// Creates a virtual page number.
    pub const fn new(n: u64) -> Self {
        VPage(n)
    }

    /// Returns the raw page number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the base virtual address of the page.
    pub fn base(self, page_size: u64) -> VAddr {
        VAddr(self.0 * page_size)
    }
}

impl std::fmt::Display for VPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vp:{:#x}", self.0)
    }
}

/// A physical page-frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PFrame(u64);

impl PFrame {
    /// Creates a physical frame number.
    pub const fn new(n: u64) -> Self {
        PFrame(n)
    }

    /// Returns the raw frame number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the base physical address of the frame.
    pub fn base(self, page_size: u64) -> PAddr {
        PAddr(self.0 * page_size)
    }
}

impl std::fmt::Display for PFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pf:{:#x}", self.0)
    }
}

/// An address in V-COMA's directory address space.
///
/// The directory memory is organised in *directory pages*; a directory
/// address identifies one directory entry (one attraction-memory block of one
/// page) at the page's home node. See paper §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DirAddr(u64);

impl DirAddr {
    /// Creates a directory address from a directory-page number and the entry
    /// index within the page.
    pub const fn new(dir_page: u64, entry: u64, entries_per_page: u64) -> Self {
        DirAddr(dir_page * entries_per_page + entry)
    }

    /// Creates a directory address from its raw linear value.
    pub const fn from_raw(raw: u64) -> Self {
        DirAddr(raw)
    }

    /// Returns the raw linear directory-entry index.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the directory-page number this entry belongs to.
    pub const fn dir_page(self, entries_per_page: u64) -> u64 {
        self.0 / entries_per_page
    }

    /// Returns the entry index within its directory page.
    pub const fn entry(self, entries_per_page: u64) -> u64 {
        self.0 % entries_per_page
    }
}

impl std::fmt::Display for DirAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d:{:#x}", self.0)
    }
}

/// A block-granularity address tagged with its address space.
///
/// The COMA-F coherence protocol is identical whether it runs on physical
/// addresses (L0–L3) or on virtual addresses (V-COMA); `BlockAddr` lets the
/// protocol code be written once. Two `BlockAddr`s are equal only if they
/// are in the same space *and* name the same block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlockAddr {
    /// A block named by its physical block number.
    Physical(u64),
    /// A block named by its virtual block number.
    Virtual(u64),
}

impl BlockAddr {
    /// Creates a physical block address from a byte [`PAddr`].
    pub fn from_paddr(pa: PAddr, block_size: u64) -> Self {
        BlockAddr::Physical(pa.block(block_size))
    }

    /// Creates a virtual block address from a byte [`VAddr`].
    pub fn from_vaddr(va: VAddr, block_size: u64) -> Self {
        BlockAddr::Virtual(va.block(block_size))
    }

    /// Returns the raw block number, discarding the space tag.
    pub const fn number(self) -> u64 {
        match self {
            BlockAddr::Physical(n) | BlockAddr::Virtual(n) => n,
        }
    }

    /// Returns `true` if this is a virtual-space block address.
    pub const fn is_virtual(self) -> bool {
        matches!(self, BlockAddr::Virtual(_))
    }

    /// Returns the page number containing this block.
    pub const fn page(self, blocks_per_page: u64) -> u64 {
        self.number() / blocks_per_page
    }

    /// Returns the block index within its page.
    pub const fn block_in_page(self, blocks_per_page: u64) -> u64 {
        self.number() % blocks_per_page
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockAddr::Physical(n) => write!(f, "pb:{n:#x}"),
            BlockAddr::Virtual(n) => write!(f, "vb:{n:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 4096;

    #[test]
    fn vaddr_page_decomposition() {
        let va = VAddr::new(0x1_2345);
        assert_eq!(va.page(PAGE), VPage::new(0x12));
        assert_eq!(va.page_offset(PAGE), 0x345);
        assert_eq!(va.block(128), 0x1_2345 / 128);
    }

    #[test]
    fn vaddr_align_and_offset() {
        let va = VAddr::new(0x1234);
        assert_eq!(va.align_down(0x1000), VAddr::new(0x1000));
        assert_eq!(va.offset(0x10), VAddr::new(0x1244));
    }

    #[test]
    fn paddr_frame_decomposition() {
        let pa = PAddr::new(7 * PAGE + 12);
        assert_eq!(pa.frame(PAGE), PFrame::new(7));
        assert_eq!(pa.page_offset(PAGE), 12);
    }

    #[test]
    fn page_base_roundtrip() {
        let vp = VPage::new(42);
        assert_eq!(vp.base(PAGE).page(PAGE), vp);
        let pf = PFrame::new(42);
        assert_eq!(pf.base(PAGE).frame(PAGE), pf);
    }

    #[test]
    fn dir_addr_decomposition() {
        // 4 KB pages of 128-byte blocks => 32 entries per directory page.
        let d = DirAddr::new(5, 17, 32);
        assert_eq!(d.raw(), 5 * 32 + 17);
        assert_eq!(d.dir_page(32), 5);
        assert_eq!(d.entry(32), 17);
        assert_eq!(DirAddr::from_raw(d.raw()), d);
    }

    #[test]
    fn block_addr_spaces_are_distinct() {
        let p = BlockAddr::Physical(10);
        let v = BlockAddr::Virtual(10);
        assert_ne!(p, v);
        assert_eq!(p.number(), v.number());
        assert!(v.is_virtual());
        assert!(!p.is_virtual());
    }

    #[test]
    fn block_addr_page_math() {
        // 32 blocks per 4 KB page with 128-byte blocks.
        let b = BlockAddr::Virtual(32 * 7 + 5);
        assert_eq!(b.page(32), 7);
        assert_eq!(b.block_in_page(32), 5);
    }

    #[test]
    fn block_addr_from_byte_addresses() {
        let va = VAddr::new(0x2080);
        assert_eq!(BlockAddr::from_vaddr(va, 128), BlockAddr::Virtual(0x41));
        let pa = PAddr::new(0x2080);
        assert_eq!(BlockAddr::from_paddr(pa, 128), BlockAddr::Physical(0x41));
    }

    #[test]
    fn display_formats() {
        assert_eq!(VAddr::new(0x10).to_string(), "v:0x10");
        assert_eq!(PAddr::new(0x10).to_string(), "p:0x10");
        assert_eq!(VPage::new(0x10).to_string(), "vp:0x10");
        assert_eq!(PFrame::new(0x10).to_string(), "pf:0x10");
        assert_eq!(DirAddr::from_raw(0x10).to_string(), "d:0x10");
        assert_eq!(BlockAddr::Virtual(1).to_string(), "vb:0x1");
        assert_eq!(BlockAddr::Physical(1).to_string(), "pb:0x1");
    }
}
