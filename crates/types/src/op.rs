//! The operations that a workload trace feeds to the simulator.

use crate::{Protection, VAddr};

/// Identifier of a synchronisation object (barrier or lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SyncId(pub u32);

impl std::fmt::Display for SyncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sync#{}", self.0)
    }
}

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// One event of a per-node workload trace.
///
/// The simulator replays a stream of `Op`s per node under sequential
/// consistency: each memory access blocks the issuing processor until it
/// completes, `Compute` advances the node's clock without touching memory
/// (the paper's "busy" time), and the synchronisation operations generate
/// the paper's "sync" time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A shared-data load from a virtual address.
    Read(VAddr),
    /// A shared-data store to a virtual address.
    Write(VAddr),
    /// Local computation for the given number of processor cycles.
    Compute(u64),
    /// Global barrier; the node waits until all nodes have arrived.
    Barrier(SyncId),
    /// Acquire a lock; the node waits until the lock is free.
    Lock(SyncId),
    /// Release a previously acquired lock.
    Unlock(SyncId),
    /// Change the protection of the page containing the address (paper
    /// §4.3). The simulator models the *consistency* cost — page-table
    /// update plus TLB/DLB shootdowns and holder notifications — not
    /// fault enforcement.
    Protect(VAddr, Protection),
}

impl Op {
    /// Returns the accessed address for `Read`/`Write`, otherwise `None`.
    pub const fn addr(self) -> Option<VAddr> {
        match self {
            Op::Read(a) | Op::Write(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the access kind for `Read`/`Write`, otherwise `None`.
    pub const fn access_kind(self) -> Option<AccessKind> {
        match self {
            Op::Read(_) => Some(AccessKind::Read),
            Op::Write(_) => Some(AccessKind::Write),
            _ => None,
        }
    }

    /// Returns `true` if this op references memory.
    pub const fn is_memory(self) -> bool {
        matches!(self, Op::Read(_) | Op::Write(_))
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Read(a) => write!(f, "read {a}"),
            Op::Write(a) => write!(f, "write {a}"),
            Op::Compute(c) => write!(f, "compute {c}"),
            Op::Barrier(id) => write!(f, "barrier {id}"),
            Op::Lock(id) => write!(f, "lock {id}"),
            Op::Unlock(id) => write!(f, "unlock {id}"),
            Op::Protect(a, p) => write!(f, "protect {a} {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        let a = VAddr::new(0x100);
        assert_eq!(Op::Read(a).addr(), Some(a));
        assert_eq!(Op::Write(a).addr(), Some(a));
        assert_eq!(Op::Compute(5).addr(), None);
        assert_eq!(Op::Read(a).access_kind(), Some(AccessKind::Read));
        assert_eq!(Op::Write(a).access_kind(), Some(AccessKind::Write));
        assert_eq!(Op::Barrier(SyncId(1)).access_kind(), None);
        assert!(Op::Read(a).is_memory());
        assert!(!Op::Lock(SyncId(0)).is_memory());
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }

    #[test]
    fn op_display() {
        assert_eq!(Op::Read(VAddr::new(16)).to_string(), "read v:0x10");
        assert_eq!(Op::Compute(7).to_string(), "compute 7");
        assert_eq!(Op::Barrier(SyncId(2)).to_string(), "barrier sync#2");
        assert_eq!(Op::Lock(SyncId(2)).to_string(), "lock sync#2");
        assert_eq!(Op::Unlock(SyncId(2)).to_string(), "unlock sync#2");
        assert_eq!(
            Op::Protect(VAddr::new(16), Protection::read_only()).to_string(),
            "protect v:0x10 r-"
        );
    }
}
