//! Configuration error type.

/// Error returned when a machine or cache configuration violates an
/// invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be a non-zero power of two was not.
    NotPowerOfTwo {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// A field was below its minimum legal value.
    TooSmall {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
        /// The minimum legal value.
        minimum: u64,
    },
    /// Block sizes must be non-decreasing going up the hierarchy
    /// (FLC ≤ SLC ≤ AM).
    BlockSizeOrdering {
        /// FLC block size.
        flc: u64,
        /// SLC block size.
        slc: u64,
        /// Attraction-memory block size.
        am: u64,
    },
    /// The attraction memory's set count must be a multiple of the blocks
    /// per page so pages occupy whole global sets.
    PageSetMismatch {
        /// Attraction-memory sets per node.
        am_sets: u64,
        /// Attraction-memory blocks per page.
        blocks_per_page: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a non-zero power of two, got {value}")
            }
            ConfigError::TooSmall { field, value, minimum } => {
                write!(f, "{field} must be at least {minimum}, got {value}")
            }
            ConfigError::BlockSizeOrdering { flc, slc, am } => write!(
                f,
                "block sizes must not shrink up the hierarchy: flc={flc}, slc={slc}, am={am}"
            ),
            ConfigError::PageSetMismatch { am_sets, blocks_per_page } => write!(
                f,
                "attraction-memory sets ({am_sets}) must be a multiple of blocks per page \
                 ({blocks_per_page})"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ConfigError::NotPowerOfTwo { field: "nodes", value: 12 };
        assert_eq!(e.to_string(), "nodes must be a non-zero power of two, got 12");
        let e = ConfigError::TooSmall { field: "page_size", value: 64, minimum: 128 };
        assert_eq!(e.to_string(), "page_size must be at least 128, got 64");
        let e = ConfigError::BlockSizeOrdering { flc: 64, slc: 32, am: 128 };
        assert!(e.to_string().contains("flc=64"));
        let e = ConfigError::PageSetMismatch { am_sets: 100, blocks_per_page: 32 };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(ConfigError::NotPowerOfTwo { field: "x", value: 3 });
    }
}
