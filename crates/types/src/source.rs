//! Streaming op sources.
//!
//! A simulation run does not need one giant `Vec<Vec<Op>>` in memory: the
//! replay engine consumes each node's operations strictly in order, one at
//! a time. [`OpSource`] is that per-node pull interface — a workload hands
//! the machine one source per node, and ops are generated (or read) lazily
//! as the engine asks for them, so peak memory is bounded by the
//! generator's working set instead of the full trace length.
//!
//! [`Materialized`] adapts a pre-built trace to the interface for tests,
//! trace files and any caller that already owns a `Vec<Op>`;
//! [`materialize`] drains a full set of sources back into plain traces.
//!
//! Sources are deliberately **not** required to be `Send`: a machine pulls
//! from all of its sources on one thread, and per-node sources of one
//! workload typically share generator state (the generators' deterministic
//! RNG is global across nodes), so implementations are free to use
//! `Rc<RefCell<..>>` without paying for atomics in the replay hot loop.

use crate::Op;

/// A lazy, single-pass stream of operations for one node.
pub trait OpSource {
    /// Returns the node's next operation, or `None` when the trace ends.
    fn next_op(&mut self) -> Option<Op>;
}

/// An [`OpSource`] over a pre-built op vector.
///
/// The adapter for callers that already hold a full trace: tests, the
/// trace-file loader, and the materialized (non-streaming) run path.
#[derive(Debug, Clone)]
pub struct Materialized {
    ops: std::vec::IntoIter<Op>,
}

impl Materialized {
    /// Wraps one node's pre-built ops.
    pub fn new(ops: Vec<Op>) -> Self {
        Materialized { ops: ops.into_iter() }
    }

    /// Ops not yet pulled.
    pub fn remaining(&self) -> usize {
        self.ops.len()
    }
}

impl OpSource for Materialized {
    fn next_op(&mut self) -> Option<Op> {
        self.ops.next()
    }
}

/// Wraps pre-built per-node traces as boxed sources, one per node.
pub fn sources_from_traces(traces: Vec<Vec<Op>>) -> Vec<Box<dyn OpSource>> {
    traces
        .into_iter()
        .map(|t| Box::new(Materialized::new(t)) as Box<dyn OpSource>)
        .collect()
}

/// Drains every source to completion, returning plain per-node traces.
pub fn materialize(sources: Vec<Box<dyn OpSource>>) -> Vec<Vec<Op>> {
    sources
        .into_iter()
        .map(|mut s| {
            let mut ops = Vec::new();
            while let Some(op) = s.next_op() {
                ops.push(op);
            }
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyncId, VAddr};

    fn ops() -> Vec<Op> {
        vec![Op::Read(VAddr::new(0x40)), Op::Compute(3), Op::Barrier(SyncId(0))]
    }

    #[test]
    fn materialized_yields_in_order_then_none() {
        let mut s = Materialized::new(ops());
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_op(), Some(Op::Read(VAddr::new(0x40))));
        assert_eq!(s.next_op(), Some(Op::Compute(3)));
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.next_op(), Some(Op::Barrier(SyncId(0))));
        assert_eq!(s.next_op(), None);
        assert_eq!(s.next_op(), None, "exhausted sources stay exhausted");
    }

    #[test]
    fn traces_roundtrip_through_sources() {
        let traces = vec![ops(), Vec::new(), vec![Op::Write(VAddr::new(0x80))]];
        let roundtripped = materialize(sources_from_traces(traces.clone()));
        assert_eq!(roundtripped, traces);
    }
}
