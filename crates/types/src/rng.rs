//! Deterministic pseudo-random number generation.
//!
//! Every source of randomness in the simulator (random TLB/DLB replacement,
//! random injection forwarding, workload permutations) draws from a seeded
//! [`DetRng`] so that a run is a pure function of its configuration and
//! seed. The generator is SplitMix64: tiny, fast, and with good statistical
//! properties for simulation purposes.

/// A deterministic 64-bit pseudo-random number generator (SplitMix64).
///
/// ```
/// use vcoma_types::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub const fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Derives an independent generator for a sub-component, mixing a label
    /// into the seed so sibling components get uncorrelated streams.
    pub fn fork(&mut self, label: u64) -> DetRng {
        let mixed = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(mixed)
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection-free variant is overkill here;
        // the bias of plain modulo is ≤ bound/2^64 which is negligible for
        // simulator-sized bounds. Keep it simple and branch-free.
        self.next_u64() % bound
    }

    /// Returns a uniformly distributed `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose requires a non-empty slice");
        &slice[self.gen_index(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.gen_range(10) < 10);
        }
        // bound of 1 always yields 0
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    #[should_panic(expected = "gen_range bound must be positive")]
    fn gen_range_zero_panics() {
        DetRng::new(0).gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = DetRng::new(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And with a reasonable seed it actually permutes something.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_uncorrelated_with_parent() {
        let mut parent = DetRng::new(13);
        let mut child = parent.fork(1);
        let a = parent.next_u64();
        let b = child.next_u64();
        assert_ne!(a, b);
        // Forks with different labels from the same parent state differ.
        let mut p2 = DetRng::new(13);
        let mut c1 = p2.fork(1);
        let mut p3 = DetRng::new(13);
        let mut c2 = p3.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn choose_picks_from_slice() {
        let mut r = DetRng::new(21);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = DetRng::new(77);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_index(8)] += 1;
        }
        for &c in &counts {
            // each bucket expects 1000; allow generous slack
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }
}
