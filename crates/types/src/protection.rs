//! Page- and segment-level access rights.

/// Access rights for a page or segment.
///
/// The paper's system checks rights at segment granularity in the common
/// case (§2.2.4) and supports page-level protection through the home node
/// (§4.3); both layers share this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Protection {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
}

impl Protection {
    /// Read and write allowed.
    pub const fn read_write() -> Self {
        Protection { read: true, write: true }
    }

    /// Read-only.
    pub const fn read_only() -> Self {
        Protection { read: true, write: false }
    }

    /// Returns `true` if an access of the given kind is permitted.
    pub const fn allows(self, write: bool) -> bool {
        if write {
            self.write
        } else {
            self.read
        }
    }
}

impl Default for Protection {
    fn default() -> Self {
        Protection::read_write()
    }
}

impl std::fmt::Display for Protection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.read, self.write) {
            (true, true) => f.write_str("rw"),
            (true, false) => f.write_str("r-"),
            (false, true) => f.write_str("-w"),
            (false, false) => f.write_str("--"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_allows() {
        let rw = Protection::read_write();
        assert!(rw.allows(false) && rw.allows(true));
        let ro = Protection::read_only();
        assert!(ro.allows(false) && !ro.allows(true));
        assert_eq!(Protection::default(), rw);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Protection::read_write().to_string(), "rw");
        assert_eq!(Protection::read_only().to_string(), "r-");
        assert_eq!(Protection { read: false, write: true }.to_string(), "-w");
        assert_eq!(Protection { read: false, write: false }.to_string(), "--");
    }
}
