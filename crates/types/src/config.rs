//! Machine geometry and the fixed-latency timing model.
//!
//! [`MachineConfig::paper_baseline`] reproduces the simulated machine of
//! paper §5.1: 32 nodes, 16 KB direct-mapped write-through FLC (32-byte
//! blocks), 64 KB 4-way write-back SLC (64-byte blocks), 4 MB 4-way
//! attraction memory (128-byte blocks), 4 KB pages, and the latency charges
//! of the paper's timing model.

use crate::{ConfigError, NodeId, VAddr, VPage};

/// Geometry of one set-associative memory structure (cache or attraction
/// memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes. Must be a power of two.
    pub size_bytes: u64,
    /// Associativity (ways per set). Must be a power of two; `1` means
    /// direct-mapped.
    pub assoc: u64,
    /// Block (line) size in bytes. Must be a power of two.
    pub block_size: u64,
}

impl CacheGeometry {
    /// Creates a geometry, validating all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is zero or not a power of
    /// two, or if the capacity cannot hold a single set.
    pub fn new(size_bytes: u64, assoc: u64, block_size: u64) -> Result<Self, ConfigError> {
        let g = CacheGeometry { size_bytes, assoc, block_size };
        g.validate()?;
        Ok(g)
    }

    /// Validates the geometry invariants.
    ///
    /// # Errors
    ///
    /// See [`CacheGeometry::new`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, v) in [
            ("size_bytes", self.size_bytes),
            ("assoc", self.assoc),
            ("block_size", self.block_size),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { field: name, value: v });
            }
        }
        if self.size_bytes < self.assoc * self.block_size {
            return Err(ConfigError::TooSmall {
                field: "size_bytes",
                value: self.size_bytes,
                minimum: self.assoc * self.block_size,
            });
        }
        Ok(())
    }

    /// Total number of blocks (lines).
    pub const fn lines(&self) -> u64 {
        self.size_bytes / self.block_size
    }

    /// Number of sets.
    pub const fn sets(&self) -> u64 {
        self.lines() / self.assoc
    }

    /// Set index for a block number (blocks in *this* geometry's block size).
    pub const fn set_of_block(&self, block: u64) -> u64 {
        block % self.sets()
    }
}

/// The paper's fixed-latency timing model, in 200 MHz processor cycles.
///
/// All latencies are charged to the issuing processor, matching the paper's
/// methodology (§5.1, citing Moga et al. \[20\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timing {
    /// First-level cache hit. The paper charges zero.
    pub flc_hit: u64,
    /// Second-level cache hit (6 cycles in the paper).
    pub slc_hit: u64,
    /// Attraction-memory hit at the local node (74 cycles in the paper).
    pub am_hit: u64,
    /// One-way latency of an 8-byte request/control message on the crossbar
    /// (16 processor cycles in the paper: 8 bytes on an 8-bit 100 MHz
    /// crossbar).
    pub net_request: u64,
    /// One-way latency of a message carrying a memory block (272 processor
    /// cycles in the paper: 128-byte block plus header).
    pub net_block: u64,
    /// Service time of a TLB miss or a DLB miss (40 cycles in the paper,
    /// §5.3).
    pub translation_miss: u64,
    /// Directory/protocol-engine occupancy per transaction at the home node.
    /// The paper folds this into the message latencies; kept separate so
    /// ablations can vary it. Defaults to zero.
    pub dir_lookup: u64,
}

impl Timing {
    /// The paper's charges (§5.1, §5.3).
    pub const fn paper() -> Self {
        Timing {
            flc_hit: 0,
            slc_hit: 6,
            am_hit: 74,
            net_request: 16,
            net_block: 272,
            translation_miss: 40,
            dir_lookup: 0,
        }
    }
}

impl Default for Timing {
    fn default() -> Self {
        Timing::paper()
    }
}

/// Complete geometry of the simulated COMA machine.
///
/// Use [`MachineConfig::paper_baseline`] for the paper's machine or
/// [`MachineConfig::builder`] to customise. All cross-structure invariants
/// (block sizes non-decreasing up the hierarchy, page divisible into AM
/// blocks, power-of-two node count) are validated at construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Number of processing nodes. Must be a power of two.
    pub nodes: u64,
    /// First-level cache geometry (direct-mapped write-through in the paper).
    pub flc: CacheGeometry,
    /// Second-level cache geometry (4-way write-back in the paper).
    pub slc: CacheGeometry,
    /// Attraction-memory geometry per node (4 MB 4-way in the paper).
    pub am: CacheGeometry,
    /// Page size in bytes (4 KB in the paper).
    pub page_size: u64,
    /// Timing model.
    pub timing: Timing,
}

impl MachineConfig {
    /// The simulated baseline machine of paper §5.1.
    ///
    /// ```
    /// let cfg = vcoma_types::MachineConfig::paper_baseline();
    /// assert_eq!(cfg.am.sets(), 8192);
    /// assert_eq!(cfg.blocks_per_page(), 32);
    /// assert_eq!(cfg.global_page_sets(), 256);
    /// ```
    pub fn paper_baseline() -> Self {
        MachineConfig {
            nodes: 32,
            flc: CacheGeometry { size_bytes: 16 << 10, assoc: 1, block_size: 32 },
            slc: CacheGeometry { size_bytes: 64 << 10, assoc: 4, block_size: 64 },
            am: CacheGeometry { size_bytes: 4 << 20, assoc: 4, block_size: 128 },
            page_size: 4096,
            timing: Timing::paper(),
        }
    }

    /// A scaled-down machine for fast unit and property tests: 4 nodes,
    /// 1 KB FLC, 2 KB SLC, 64 KB AM, 1 KB pages, paper timing.
    pub fn tiny() -> Self {
        MachineConfig {
            nodes: 4,
            flc: CacheGeometry { size_bytes: 1 << 10, assoc: 1, block_size: 32 },
            slc: CacheGeometry { size_bytes: 2 << 10, assoc: 4, block_size: 64 },
            am: CacheGeometry { size_bytes: 64 << 10, assoc: 4, block_size: 128 },
            page_size: 1024,
            timing: Timing::paper(),
        }
    }

    /// Starts building a custom configuration from the paper baseline.
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder { cfg: MachineConfig::paper_baseline() }
    }

    /// Validates all cross-structure invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any geometry is invalid, the node count or
    /// page size is not a power of two, block sizes shrink up the hierarchy,
    /// or a page does not contain a whole number of blocks at each level.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.flc.validate()?;
        self.slc.validate()?;
        self.am.validate()?;
        if self.nodes == 0 || !self.nodes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { field: "nodes", value: self.nodes });
        }
        if self.page_size == 0 || !self.page_size.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { field: "page_size", value: self.page_size });
        }
        if self.flc.block_size > self.slc.block_size || self.slc.block_size > self.am.block_size {
            return Err(ConfigError::BlockSizeOrdering {
                flc: self.flc.block_size,
                slc: self.slc.block_size,
                am: self.am.block_size,
            });
        }
        if self.page_size < self.am.block_size {
            return Err(ConfigError::TooSmall {
                field: "page_size",
                value: self.page_size,
                minimum: self.am.block_size,
            });
        }
        // A page must span a whole number of AM sets so that a page occupies
        // "the same slots in consecutive global sets" (paper §3.4).
        if !self.am.sets().is_multiple_of(self.blocks_per_page()) {
            return Err(ConfigError::PageSetMismatch {
                am_sets: self.am.sets(),
                blocks_per_page: self.blocks_per_page(),
            });
        }
        Ok(())
    }

    /// Number of attraction-memory blocks per page (32 in the paper:
    /// 4 KB / 128 B). This is also the number of entries in a V-COMA
    /// *directory page*.
    pub const fn blocks_per_page(&self) -> u64 {
        self.page_size / self.am.block_size
    }

    /// Number of *global page sets* (paper §3.4): groups of contiguous AM
    /// global sets in which all blocks of a page reside. 256 in the paper
    /// (8192 AM sets / 32 blocks per page).
    pub const fn global_page_sets(&self) -> u64 {
        self.am.sets() / self.blocks_per_page()
    }

    /// Capacity of one global page set in page slots: `nodes × assoc`
    /// (paper §6). 128 in the paper.
    pub const fn page_slots_per_global_set(&self) -> u64 {
        self.nodes * self.am.assoc
    }

    /// Number of page frames each node's attraction memory can hold.
    pub const fn pages_per_node(&self) -> u64 {
        self.am.size_bytes / self.page_size
    }

    /// Total page frames in the machine.
    pub const fn total_page_frames(&self) -> u64 {
        self.pages_per_node() * self.nodes
    }

    /// The global page set a virtual page maps to (its "color").
    pub const fn global_page_set_of(&self, vpage: VPage) -> u64 {
        vpage.raw() % self.global_page_sets()
    }

    /// Home node of a virtual page: the `log2(nodes)` least-significant bits
    /// of the page number (paper §4.2 / Figure 6). Used by V-COMA and by the
    /// SHARED-TLB organisation.
    pub const fn home_of_vpage(&self, vpage: VPage) -> NodeId {
        NodeId::new((vpage.raw() % self.nodes) as u16)
    }

    /// Home node of a virtual byte address.
    pub fn home_of_vaddr(&self, va: VAddr) -> NodeId {
        self.home_of_vpage(va.page(self.page_size))
    }

    /// Home node of a physical frame: round-robin on the frame number,
    /// matching the paper's round-robin physical page assignment.
    pub const fn home_of_pframe(&self, frame: u64) -> NodeId {
        NodeId::new((frame % self.nodes) as u16)
    }

    /// AM set index of an AM-block number.
    pub const fn am_set_of_block(&self, block: u64) -> u64 {
        block % self.am.sets()
    }

    /// Iterator over all node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes as u16).map(NodeId::new)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper_baseline()
    }
}

/// Builder for [`MachineConfig`], starting from the paper baseline.
///
/// ```
/// use vcoma_types::MachineConfig;
/// let cfg = MachineConfig::builder().nodes(64).page_size(8192).build()?;
/// assert_eq!(cfg.nodes, 64);
/// # Ok::<(), vcoma_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl MachineConfigBuilder {
    /// Sets the node count.
    pub fn nodes(mut self, nodes: u64) -> Self {
        self.cfg.nodes = nodes;
        self
    }

    /// Sets the FLC geometry.
    pub fn flc(mut self, g: CacheGeometry) -> Self {
        self.cfg.flc = g;
        self
    }

    /// Sets the SLC geometry.
    pub fn slc(mut self, g: CacheGeometry) -> Self {
        self.cfg.slc = g;
        self
    }

    /// Sets the attraction-memory geometry.
    pub fn am(mut self, g: CacheGeometry) -> Self {
        self.cfg.am = g;
        self
    }

    /// Sets the page size in bytes.
    pub fn page_size(mut self, bytes: u64) -> Self {
        self.cfg.page_size = bytes;
        self
    }

    /// Sets the timing model.
    pub fn timing(mut self, t: Timing) -> Self {
        self.cfg.timing = t;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the assembled configuration violates any
    /// invariant; see [`MachineConfig::validate`].
    pub fn build(self) -> Result<MachineConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_section_5_1() {
        let cfg = MachineConfig::paper_baseline();
        cfg.validate().unwrap();
        assert_eq!(cfg.nodes, 32);
        assert_eq!(cfg.flc.lines(), 512);
        assert_eq!(cfg.flc.sets(), 512); // direct-mapped
        assert_eq!(cfg.slc.lines(), 1024);
        assert_eq!(cfg.slc.sets(), 256);
        assert_eq!(cfg.am.lines(), 32768);
        assert_eq!(cfg.am.sets(), 8192);
        assert_eq!(cfg.blocks_per_page(), 32);
        assert_eq!(cfg.global_page_sets(), 256);
        assert_eq!(cfg.page_slots_per_global_set(), 128);
        assert_eq!(cfg.pages_per_node(), 1024);
        assert_eq!(cfg.total_page_frames(), 32768);
    }

    #[test]
    fn paper_timing_charges() {
        let t = Timing::paper();
        assert_eq!(t.flc_hit, 0);
        assert_eq!(t.slc_hit, 6);
        assert_eq!(t.am_hit, 74);
        assert_eq!(t.net_request, 16);
        assert_eq!(t.net_block, 272);
        assert_eq!(t.translation_miss, 40);
        assert_eq!(Timing::default(), t);
    }

    #[test]
    fn home_node_is_low_page_bits() {
        let cfg = MachineConfig::paper_baseline();
        for p in 0..100u64 {
            let vp = VPage::new(p);
            assert_eq!(cfg.home_of_vpage(vp).index() as u64, p % 32);
        }
        assert_eq!(cfg.home_of_vaddr(VAddr::new(33 * 4096 + 5)).index(), 1);
    }

    #[test]
    fn global_page_set_wraps() {
        let cfg = MachineConfig::paper_baseline();
        assert_eq!(cfg.global_page_set_of(VPage::new(0)), 0);
        assert_eq!(cfg.global_page_set_of(VPage::new(256)), 0);
        assert_eq!(cfg.global_page_set_of(VPage::new(257)), 1);
    }

    #[test]
    fn geometry_rejects_non_power_of_two() {
        assert!(matches!(
            CacheGeometry::new(1000, 1, 32),
            Err(ConfigError::NotPowerOfTwo { field: "size_bytes", .. })
        ));
        assert!(matches!(
            CacheGeometry::new(1024, 3, 32),
            Err(ConfigError::NotPowerOfTwo { field: "assoc", .. })
        ));
        assert!(matches!(
            CacheGeometry::new(1024, 1, 0),
            Err(ConfigError::NotPowerOfTwo { field: "block_size", .. })
        ));
    }

    #[test]
    fn geometry_rejects_capacity_below_one_set() {
        assert!(matches!(
            CacheGeometry::new(128, 4, 64),
            Err(ConfigError::TooSmall { .. })
        ));
    }

    #[test]
    fn config_rejects_shrinking_block_sizes() {
        let cfg = MachineConfig::builder()
            .flc(CacheGeometry { size_bytes: 16 << 10, assoc: 1, block_size: 128 })
            .build();
        assert!(matches!(cfg, Err(ConfigError::BlockSizeOrdering { .. })));
    }

    #[test]
    fn config_rejects_odd_node_count() {
        assert!(MachineConfig::builder().nodes(12).build().is_err());
    }

    #[test]
    fn builder_customises_from_baseline() {
        let cfg = MachineConfig::builder().nodes(64).build().unwrap();
        assert_eq!(cfg.nodes, 64);
        assert_eq!(cfg.page_slots_per_global_set(), 256);
    }

    #[test]
    fn tiny_config_is_valid() {
        MachineConfig::tiny().validate().unwrap();
    }

    #[test]
    fn set_of_block_wraps_at_sets() {
        let g = CacheGeometry::new(1024, 2, 64).unwrap();
        assert_eq!(g.sets(), 8);
        assert_eq!(g.set_of_block(0), 0);
        assert_eq!(g.set_of_block(8), 0);
        assert_eq!(g.set_of_block(9), 1);
    }
}
