//! RADIX: the SPLASH-2 integer radix sort.
//!
//! Table 1: `-n524288 -r2048 -m1048576`, 6.12 MB shared. The defining
//! behaviour (paper §5.2): in each pass every node writes its keys into a
//! large output array *shared and distributed among all nodes*; these
//! permutation writes are not filtered by any cache, show no TLB working
//! set below the array size (~512 pages), and are the workload where
//! V-COMA's shared, prefetching DLB wins by the largest margin.
//!
//! Trace structure per pass:
//! 1. **Histogram**: each node streams its key partition (reads) while
//!    updating its private histogram (hot local writes); barrier.
//! 2. **Prefix**: each node reads every node's histogram (all-to-all
//!    read sharing of small regions); barrier.
//! 3. **Permutation**: per key block, one partition read plus permutation
//!    writes into the shared output array — a mix of *uniform* scatter
//!    (the digit-driven component, spanning the whole array) and
//!    *cursor-run* writes (consecutive keys of the same digit landing in
//!    the same bucket block); barrier.

use crate::common::{layout, scaled_count, TraceBuilder};
use crate::streaming::phased;
use crate::Workload;
use vcoma_types::{MachineConfig, OpSource};

/// The RADIX generator. See the module docs.
#[derive(Debug, Clone)]
pub struct Radix {
    /// Number of keys (`-n`).
    pub keys: u64,
    /// Radix (`-r`): buckets per pass.
    pub radix: u64,
    /// Maximum key value (`-m`); together with `radix` this fixes the pass
    /// count.
    pub max_key: u64,
    /// Fraction of the keys actually replayed (1.0 = all). Scaling down
    /// shortens the trace without shrinking the arrays, so the TLB/DLB
    /// behaviour keeps its shape.
    pub scale: f64,
}

impl Radix {
    /// Table-1 parameters.
    pub fn paper() -> Self {
        Radix { keys: 524_288, radix: 2048, max_key: 1_048_576, scale: 1.0 }
    }

    /// Returns a copy replaying `scale` of the keys.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sort passes: `ceil(log_radix(max_key))` — two with the paper's
    /// parameters.
    pub fn passes(&self) -> u32 {
        let mut passes = 0;
        let mut covered: u64 = 1;
        while covered < self.max_key {
            covered = covered.saturating_mul(self.radix);
            passes += 1;
        }
        passes.max(1)
    }
}

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "RADIX"
    }

    fn params(&self) -> String {
        format!("-n{} -r{} -m{}", self.keys, self.radix, self.max_key)
    }

    fn shared_mb(&self) -> f64 {
        6.12
    }

    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        let nodes = cfg.nodes;
        let mut l = layout(cfg);
        let key_bytes = self.keys * 4;
        let keys_r = l.region("keys", key_bytes, cfg.page_size).expect("layout");
        let out_r = l.region("output", key_bytes, cfg.page_size).expect("layout");
        // One histogram page-pair per node, page-aligned so they do not
        // false-share.
        let hist_r: Vec<_> = (0..nodes)
            .map(|_| l.region("histogram", self.radix * 4, cfg.page_size).expect("layout"))
            .collect();

        let mut b = TraceBuilder::new(nodes, 0xAD1);
        b.think = 2;
        b.think_jitter = 5;
        let keys_per_node = self.keys / nodes;
        let blocks_per_node = scaled_count(keys_per_node * 4 / 32, self.scale);
        let part = key_bytes / nodes;
        let page_size = cfg.page_size;
        let radix = self.radix;
        let scale = self.scale;
        let passes = self.passes();

        // One step per barrier phase: (pass, phase) with three phases per
        // sort pass — histogram, prefix, permutation.
        let mut pass = 0u32;
        let mut phase = 0u8;
        phased(b, move |b| {
            if pass >= passes {
                return false;
            }
            // Alternate source/destination arrays between passes.
            let (src, dst) =
                if pass.is_multiple_of(2) { (&keys_r, &out_r) } else { (&out_r, &keys_r) };
            match phase {
                0 => {
                    // Phase 1: local histogram over the key partition. Key
                    // pages are visited in a node-private random order
                    // (block-sequential within a page): partitions are
                    // stripe-aligned, so a lockstep sweep would hit one
                    // home node at a time machine-wide.
                    for (n, hist) in hist_r.iter().enumerate() {
                        let base = n as u64 * part;
                        let pages = (part / page_size).max(1);
                        let mut order: Vec<u64> = (0..pages).collect();
                        b.rng().shuffle(&mut order);
                        let blocks_per_page = page_size / 32;
                        for blk in 0..blocks_per_node {
                            let vpage = order[((blk / blocks_per_page) % pages) as usize];
                            let off = (vpage * page_size + (blk % blocks_per_page) * 32) % part;
                            b.read(n, src.addr(base + off));
                            // Two histogram bucket updates per key block
                            // (hot, private pages).
                            for _ in 0..2 {
                                let bucket = b.rng().gen_range(radix);
                                b.write(n, hist.addr(bucket * 4));
                            }
                        }
                    }
                    b.barrier();
                }
                1 => {
                    // Phase 2: global prefix sums — every node reads every
                    // histogram (sampled with the same scale as the key
                    // streams).
                    let prefix_reads = scaled_count(radix * 4 / 256, scale);
                    for n in 0..nodes as usize {
                        for h in &hist_r {
                            for k in 0..prefix_reads {
                                b.read(n, h.addr((k * 256) % (radix * 4)));
                            }
                        }
                    }
                    b.barrier();
                }
                _ => {
                    // Phase 3: permutation. Prefix sums partition every
                    // bucket among the nodes, so a node's permutation
                    // writes land in its own slots — 128-byte chunks
                    // strided by the node count across the whole output
                    // array. There is no intra-pass write sharing
                    // (coherence traffic comes from the next pass reading
                    // the scattered output), but the page stream is
                    // essentially random over the whole array, which is
                    // what starves every private TLB below ~512 entries
                    // (paper §5.2).
                    let chunks = key_bytes / (128 * nodes);
                    for n in 0..nodes as usize {
                        let base = n as u64 * part;
                        // Byte address of this node's chunk `c`.
                        let own_chunk = |c: u64| (c % chunks * nodes + n as u64) * 128;
                        let mut cursor = b.rng().gen_range(chunks);
                        let pages = (part / page_size).max(1);
                        let mut order: Vec<u64> = (0..pages).collect();
                        b.rng().shuffle(&mut order);
                        let blocks_per_page = page_size / 32;
                        for blk in 0..blocks_per_node {
                            let vpage = order[((blk / blocks_per_page) % pages) as usize];
                            let off = (vpage * page_size + (blk % blocks_per_page) * 32) % part;
                            b.read(n, src.addr(base + off));
                            // An isolated key of a rare digit now and
                            // then: a random own slot anywhere in the
                            // output array.
                            if blk % 2 == 0 {
                                let stray = b.rng().gen_range(chunks);
                                let stray_off = b.rng().gen_range(4) * 32;
                                b.write(n, dst.addr(own_chunk(stray) + stray_off));
                            }
                            // A run of keys with equal digits: the bucket
                            // cursor's current 32-byte quarter of the
                            // node's chunk.
                            let quarter = (blk % 4) * 32;
                            for k in 0..6u64 {
                                b.write(n, dst.addr(own_chunk(cursor) + quarter + k * 4));
                            }
                            if blk % 4 == 3 {
                                // Chunk exhausted; jump to a fresh bucket
                                // slot.
                                cursor = b.rng().gen_range(chunks);
                            }
                        }
                    }
                    b.barrier();
                }
            }
            phase += 1;
            if phase == 3 {
                phase = 0;
                pass += 1;
            }
            pass < passes
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma_types::Op;

    #[test]
    fn paper_params_give_two_passes() {
        assert_eq!(Radix::paper().passes(), 2);
        assert_eq!(Radix::paper().params(), "-n524288 -r2048 -m1048576");
    }

    #[test]
    fn passes_of_other_geometries() {
        let r = Radix { keys: 16, radix: 4, max_key: 64, scale: 1.0 };
        assert_eq!(r.passes(), 3);
        let r = Radix { keys: 16, radix: 1024, max_key: 4, scale: 1.0 };
        assert_eq!(r.passes(), 1);
    }

    #[test]
    fn trace_is_write_heavy() {
        let cfg = MachineConfig::paper_baseline();
        let traces = Radix::paper().scaled(0.01).generate(&cfg);
        let (mut reads, mut writes) = (0u64, 0u64);
        for op in traces.iter().flatten() {
            match op {
                Op::Read(_) => reads += 1,
                Op::Write(_) => writes += 1,
                _ => {}
            }
        }
        assert!(writes > reads, "radix is write-dominated: {writes} vs {reads}");
    }

    #[test]
    fn permutation_writes_span_the_whole_output_array() {
        let cfg = MachineConfig::paper_baseline();
        let traces = Radix::paper().scaled(0.02).generate(&cfg);
        let mut pages = std::collections::HashSet::new();
        for op in traces.iter().flatten() {
            if let Op::Write(a) = op {
                pages.insert(a.page(cfg.page_size));
            }
        }
        // Output array is 2 MB = 512 pages; scatter should reach most of it.
        assert!(pages.len() > 300, "only {} distinct written pages", pages.len());
    }

    #[test]
    fn scaling_shortens_the_trace() {
        let cfg = MachineConfig::paper_baseline();
        let small: usize =
            Radix::paper().scaled(0.01).generate(&cfg).iter().map(Vec::len).sum();
        let big: usize =
            Radix::paper().scaled(0.02).generate(&cfg).iter().map(Vec::len).sum();
        assert!(big > small);
    }
}
