//! Phase-chunked lazy generation.
//!
//! Every generator in this crate emits its trace as a sequence of
//! barrier-delimited phases over one shared [`TraceBuilder`] (the
//! deterministic RNG is global across nodes, so nodes cannot regenerate
//! their streams independently). [`phased`] wraps a generator restructured
//! as a *step* closure — "emit the next phase" — into one lazy
//! [`OpSource`] per node: a phase is generated only when some node has
//! drained its buffered ops, so peak memory is one phase's worth of ops
//! instead of the whole trace.
//!
//! Because the step closure runs exactly the generator's original loop
//! body in the original order, the concatenation of the phases is
//! byte-identical to the eagerly-built trace regardless of which node's
//! pull triggers each phase.

use crate::common::TraceBuilder;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use vcoma_types::{Op, OpSource};

/// Generator state shared by all of one workload's per-node sources.
struct SharedGen {
    builder: TraceBuilder,
    /// Emits the next phase into `builder`. Returns `false` once no
    /// phases remain (a call finding nothing left to emit must emit
    /// nothing and return `false`).
    step: Box<dyn FnMut(&mut TraceBuilder) -> bool>,
    /// Ops generated but not yet pulled, per node.
    buffers: Vec<VecDeque<Op>>,
    exhausted: bool,
}

/// One node's view of a phase-chunked generator.
struct PhasedSource {
    gen: Rc<RefCell<SharedGen>>,
    node: usize,
}

impl OpSource for PhasedSource {
    fn next_op(&mut self) -> Option<Op> {
        let mut g = self.gen.borrow_mut();
        loop {
            if let Some(op) = g.buffers[self.node].pop_front() {
                return Some(op);
            }
            if g.exhausted {
                return None;
            }
            let SharedGen { builder, step, buffers, exhausted } = &mut *g;
            if !(step)(builder) {
                *exhausted = true;
            }
            for (buf, ops) in buffers.iter_mut().zip(builder.take_phase()) {
                buf.extend(ops);
            }
        }
    }
}

/// Wraps a phase-step closure over `builder` into one lazy source per
/// node. `step` is called each time some node exhausts its buffer; it
/// must emit the next phase (or nothing, when done) and return whether
/// more phases remain.
pub(crate) fn phased(
    builder: TraceBuilder,
    step: impl FnMut(&mut TraceBuilder) -> bool + 'static,
) -> Vec<Box<dyn OpSource>> {
    let nodes = builder.nodes();
    let gen = Rc::new(RefCell::new(SharedGen {
        builder,
        step: Box::new(step),
        buffers: vec![VecDeque::new(); nodes],
        exhausted: false,
    }));
    (0..nodes)
        .map(|node| Box::new(PhasedSource { gen: Rc::clone(&gen), node }) as Box<dyn OpSource>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use vcoma_types::{materialize, VAddr};

    /// A toy two-phase generator: phase `p` writes address `p` on every
    /// node, then a barrier.
    fn toy(phases: u32) -> Vec<Box<dyn OpSource>> {
        let mut b = TraceBuilder::new(3, 1);
        b.think = 0;
        let mut p = 0u32;
        phased(b, move |b| {
            if p >= phases {
                return false;
            }
            for n in 0..3 {
                b.write(n, VAddr::new(p as u64 * 64));
            }
            b.barrier();
            p += 1;
            p < phases
        })
    }

    #[test]
    fn phased_concatenation_matches_eager_build() {
        let mut b = TraceBuilder::new(3, 1);
        b.think = 0;
        for p in 0..4u32 {
            for n in 0..3 {
                b.write(n, VAddr::new(p as u64 * 64));
            }
            b.barrier();
        }
        assert_eq!(materialize(toy(4)), b.into_traces());
    }

    #[test]
    fn zero_phase_generators_yield_empty_traces() {
        assert_eq!(materialize(toy(0)), vec![Vec::new(); 3]);
    }

    #[test]
    fn phases_are_generated_on_demand() {
        let calls = Rc::new(Cell::new(0u32));
        let seen = Rc::clone(&calls);
        let mut b = TraceBuilder::new(2, 1);
        b.think = 0;
        let mut p = 0u32;
        let mut sources = phased(b, move |b| {
            seen.set(seen.get() + 1);
            for n in 0..2 {
                b.write(n, VAddr::new(p as u64 * 64));
            }
            p += 1;
            p < 8
        });
        assert_eq!(calls.get(), 0, "nothing is generated before the first pull");
        let _ = sources[0].next_op();
        assert_eq!(calls.get(), 1, "one pull generates exactly one phase");
        // Node 1's first op comes from the already-buffered phase.
        let _ = sources[1].next_op();
        assert_eq!(calls.get(), 1);
    }
}
