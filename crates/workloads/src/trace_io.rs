//! Plain-text trace serialisation.
//!
//! Generated traces can be saved and reloaded, so an interesting run can
//! be archived, diffed, or replayed on a modified simulator without
//! regenerating it. The format is line-oriented and self-describing:
//!
//! ```text
//! # vcoma trace v1
//! node 0
//! r 0x1000
//! w 0x2040
//! c 5
//! b 0
//! l 1
//! u 1
//! node 1
//! …
//! ```
//!
//! `r`/`w` carry hexadecimal byte addresses; `c` carries compute cycles;
//! `b`, `l` and `u` carry barrier/lock identifiers in decimal; `p` carries
//! an address and a rights string (`rw`, `r-`, `-w`, `--`).
//!
//! Loaded traces replay through the streaming engine via the
//! [`vcoma_types::sources_from_traces`] adapter, which wraps each node's
//! `Vec<Op>` in a [`vcoma_types::Materialized`] cursor.

use vcoma_types::{Op, Protection, SyncId, VAddr};

/// The header line identifying the format.
pub const TRACE_HEADER: &str = "# vcoma trace v1";

/// Error produced when parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serialises per-node traces to the text format.
pub fn save_traces(traces: &[Vec<Op>]) -> String {
    let mut out = String::with_capacity(traces.iter().map(Vec::len).sum::<usize>() * 10 + 64);
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for (n, trace) in traces.iter().enumerate() {
        out.push_str(&format!("node {n}\n"));
        for op in trace {
            match op {
                Op::Read(a) => out.push_str(&format!("r {:#x}\n", a.raw())),
                Op::Write(a) => out.push_str(&format!("w {:#x}\n", a.raw())),
                Op::Compute(c) => out.push_str(&format!("c {c}\n")),
                Op::Barrier(id) => out.push_str(&format!("b {}\n", id.0)),
                Op::Lock(id) => out.push_str(&format!("l {}\n", id.0)),
                Op::Unlock(id) => out.push_str(&format!("u {}\n", id.0)),
                Op::Protect(a, p) => out.push_str(&format!("p {:#x} {p}\n", a.raw())),
            }
        }
    }
    out
}

/// Parses the text format back into per-node traces.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on a missing/foreign header, an op before
/// the first `node` line, out-of-order node declarations, or a malformed
/// op line.
pub fn load_traces(text: &str) -> Result<Vec<Vec<Op>>, ParseTraceError> {
    let err = |line: usize, message: &str| ParseTraceError { line, message: message.to_string() };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == TRACE_HEADER => {}
        Some((i, h)) => return Err(err(i + 1, &format!("expected `{TRACE_HEADER}`, got `{h}`"))),
        None => return Err(err(1, "empty input")),
    }
    let mut traces: Vec<Vec<Op>> = Vec::new();
    for (i, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (tag, rest) = line.split_once(' ').ok_or_else(|| err(i + 1, "missing operand"))?;
        let rest = rest.trim();
        match tag {
            "node" => {
                let n: usize =
                    rest.parse().map_err(|_| err(i + 1, "node index must be decimal"))?;
                if n != traces.len() {
                    return Err(err(
                        i + 1,
                        &format!("node {n} out of order (expected {})", traces.len()),
                    ));
                }
                traces.push(Vec::new());
            }
            "r" | "w" => {
                let hex = rest.strip_prefix("0x").ok_or_else(|| {
                    err(i + 1, "addresses must be hexadecimal with a 0x prefix")
                })?;
                let addr = u64::from_str_radix(hex, 16)
                    .map_err(|_| err(i + 1, "invalid hexadecimal address"))?;
                let op = if tag == "r" {
                    Op::Read(VAddr::new(addr))
                } else {
                    Op::Write(VAddr::new(addr))
                };
                traces.last_mut().ok_or_else(|| err(i + 1, "op before first node"))?.push(op);
            }
            "c" => {
                let cycles: u64 =
                    rest.parse().map_err(|_| err(i + 1, "invalid cycle count"))?;
                traces
                    .last_mut()
                    .ok_or_else(|| err(i + 1, "op before first node"))?
                    .push(Op::Compute(cycles));
            }
            "b" | "l" | "u" => {
                let id: u32 = rest.parse().map_err(|_| err(i + 1, "invalid sync id"))?;
                let op = match tag {
                    "b" => Op::Barrier(SyncId(id)),
                    "l" => Op::Lock(SyncId(id)),
                    _ => Op::Unlock(SyncId(id)),
                };
                traces.last_mut().ok_or_else(|| err(i + 1, "op before first node"))?.push(op);
            }
            "p" => {
                let (addr, prot) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(i + 1, "protect needs an address and rights"))?;
                let hex = addr.strip_prefix("0x").ok_or_else(|| {
                    err(i + 1, "addresses must be hexadecimal with a 0x prefix")
                })?;
                let addr = u64::from_str_radix(hex, 16)
                    .map_err(|_| err(i + 1, "invalid hexadecimal address"))?;
                let prot = match prot.trim() {
                    "rw" => Protection::read_write(),
                    "r-" => Protection::read_only(),
                    "-w" => Protection { read: false, write: true },
                    "--" => Protection { read: false, write: false },
                    other => return Err(err(i + 1, &format!("unknown rights `{other}`"))),
                };
                traces
                    .last_mut()
                    .ok_or_else(|| err(i + 1, "op before first node"))?
                    .push(Op::Protect(VAddr::new(addr), prot));
            }
            other => return Err(err(i + 1, &format!("unknown op tag `{other}`"))),
        }
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_hand_built_trace() {
        let traces = vec![
            vec![
                Op::Read(VAddr::new(0x1000)),
                Op::Write(VAddr::new(0x2040)),
                Op::Compute(5),
                Op::Barrier(SyncId(0)),
            ],
            vec![
                Op::Lock(SyncId(7)),
                Op::Unlock(SyncId(7)),
                Op::Protect(VAddr::new(0x3000), Protection::read_only()),
                Op::Barrier(SyncId(0)),
            ],
        ];
        let text = save_traces(&traces);
        assert!(text.starts_with(TRACE_HEADER));
        assert_eq!(load_traces(&text).unwrap(), traces);
    }

    #[test]
    fn roundtrip_generated_benchmark() {
        use crate::Workload;
        let cfg = vcoma_types::MachineConfig::paper_baseline();
        let traces = crate::Barnes::paper().scaled(0.002).generate(&cfg);
        let text = save_traces(&traces);
        assert_eq!(load_traces(&text).unwrap(), traces);
    }

    #[test]
    fn loaded_traces_stream_through_source_cursors() {
        use crate::Workload;
        let cfg = vcoma_types::MachineConfig::tiny();
        let traces = crate::PingPong { rounds: 5 }.generate(&cfg);
        let loaded = load_traces(&save_traces(&traces)).unwrap();
        let mut sources = vcoma_types::sources_from_traces(loaded);
        let replayed: Vec<Vec<Op>> = sources
            .iter_mut()
            .map(|s| std::iter::from_fn(|| s.next_op()).collect())
            .collect();
        assert_eq!(replayed, traces);
    }

    #[test]
    fn rejects_missing_header() {
        let e = load_traces("node 0\nr 0x10\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("expected"));
        assert!(load_traces("").is_err());
    }

    #[test]
    fn rejects_op_before_node() {
        let e = load_traces("# vcoma trace v1\nr 0x10\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("before first node"));
    }

    #[test]
    fn rejects_out_of_order_nodes() {
        let e = load_traces("# vcoma trace v1\nnode 1\n").unwrap_err();
        assert!(e.message.contains("out of order"));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["r 10", "r 0xzz", "c ten", "b x", "q 1", "node x"] {
            let text = format!("# vcoma trace v1\nnode 0\n{bad}\n");
            assert!(load_traces(&text).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# vcoma trace v1\n\n# a comment\nnode 0\nr 0x40\n\n";
        let traces = load_traces(text).unwrap();
        assert_eq!(traces, vec![vec![Op::Read(VAddr::new(0x40))]]);
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn roundtrip_random_traces(
                ops in proptest::collection::vec(
                    proptest::collection::vec((0u8..7, 0u64..1 << 40), 0..40),
                    1..4,
                )
            ) {
                let traces: Vec<Vec<Op>> = ops
                    .iter()
                    .map(|node| {
                        node.iter()
                            .map(|&(k, v)| match k {
                                0 => Op::Read(VAddr::new(v)),
                                1 => Op::Write(VAddr::new(v)),
                                2 => Op::Compute(v),
                                3 => Op::Barrier(SyncId(v as u32)),
                                4 => Op::Lock(SyncId(v as u32)),
                                5 => Op::Unlock(SyncId(v as u32)),
                                _ => Op::Protect(
                                    VAddr::new(v),
                                    match v % 4 {
                                        0 => Protection::read_write(),
                                        1 => Protection::read_only(),
                                        2 => Protection { read: false, write: true },
                                        _ => Protection { read: false, write: false },
                                    },
                                ),
                            })
                            .collect()
                    })
                    .collect();
                let text = save_traces(&traces);
                prop_assert_eq!(load_traces(&text).unwrap(), traces);
            }
        }
    }
}
