//! OCEAN: the SPLASH-2 ocean-current simulation (contiguous partitions).
//!
//! Table 1: `258×258`, 15.52 MB shared (about twenty-five 258×258 grids of
//! doubles). The defining behaviour: red-black Gauss-Seidel stencil sweeps
//! over row-partitioned grids — every interior point reads its four
//! neighbours and writes itself, so a node's sweep alternates between
//! three row-pages of two grids at once (strong pressure on a small TLB),
//! band boundaries are read by the neighbouring node (nearest-neighbour
//! coherence), and the long dirty sweeps evict from the SLC as writebacks
//! with poor locality — the other workload the paper singles out for the
//! `L2-TLB` writeback penalty.

use crate::common::{layout, TraceBuilder};
use crate::streaming::phased;
use crate::Workload;
use vcoma_types::{MachineConfig, OpSource};

/// The OCEAN generator. See the module docs.
#[derive(Debug, Clone)]
pub struct Ocean {
    /// Grid edge (`258` in Table 1, including border cells).
    pub n: u64,
    /// Number of grids cycled through by the solver sweeps.
    pub grids: u64,
    /// Relaxation iterations (each is a red sweep + a black sweep).
    pub iterations: u64,
    /// Fraction of each sweep replayed (1.0 = all).
    pub scale: f64,
}

impl Ocean {
    /// Table-1 parameters: 258×258, the multigrid working set, enough
    /// iterations for steady-state behaviour.
    pub fn paper() -> Self {
        Ocean { n: 258, grids: 25, iterations: 8, scale: 1.0 }
    }

    /// Returns a copy replaying `scale` of each sweep.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Bytes of one grid of doubles.
    pub fn grid_bytes(&self) -> u64 {
        self.n * self.n * 8
    }

    /// Bytes of one grid row.
    pub fn row_bytes(&self) -> u64 {
        self.n * 8
    }
}

impl Workload for Ocean {
    fn name(&self) -> &'static str {
        "OCEAN"
    }

    fn params(&self) -> String {
        format!("{}*{}", self.n, self.n)
    }

    fn shared_mb(&self) -> f64 {
        15.52
    }

    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        let nodes = cfg.nodes;
        let mut l = layout(cfg);
        // The multigrid solver owns many grids; sweeps cycle through pairs.
        let grids: Vec<_> = (0..self.grids.max(6))
            .map(|_| l.region("grid", self.grid_bytes(), cfg.page_size).expect("layout"))
            .collect();

        let mut b = TraceBuilder::new(nodes, 0x0CEA);
        b.think = 2;
        b.think_jitter = 5;
        let rows_per_node = (self.n / nodes).max(1);
        let row = self.row_bytes();
        let edge = self.n;
        // One reference per 64 bytes of a row (8 doubles). Rows are always
        // swept at full density so the per-page burst structure survives;
        // scaling reduces the number of relaxation iterations instead.
        let refs_per_row = row / 64;
        let iterations =
            ((self.iterations as f64 * self.scale).round() as u64).clamp(4, self.iterations.max(4));

        // One step per half-sweep: (iteration, color) pairs.
        let mut it = 0u64;
        let mut color = 0u64;
        phased(b, move |b| {
            if it >= iterations {
                return false;
            }
            // Each iteration relaxes one grid against a right-hand-side
            // grid, cycling through the multigrid hierarchy.
            // The relaxation window reuses a small set of grids: the two
            // red/black solution grids, their right-hand sides, and two
            // coefficient fields (γ, friction). The remaining multigrid
            // levels exist in the footprint but are cold in this window.
            let cur = &grids[(it % 2) as usize];
            let rhs = &grids[(2 + it % 2) as usize];
            let aux1 = &grids[4];
            let aux2 = &grids[5];
            // Red sweep then black sweep, barrier after each.
            for n in 0..nodes as usize {
                let first_row = n as u64 * rows_per_node;
                for r in 0..rows_per_node {
                    let gr = first_row + r;
                    if gr == 0 || gr + 1 >= edge {
                        continue; // border rows are fixed
                    }
                    if !(gr + color).is_multiple_of(2) {
                        continue; // wrong color this half-sweep
                    }
                    for k in 0..refs_per_row {
                        let off = gr * row + (k * 64) % row;
                        // Stencil: self, north, south (the north/south
                        // rows of the band edges belong to the
                        // neighbouring nodes' bands), the right-hand
                        // side and two coefficient grids; write self.
                        b.read(n, cur.addr(off));
                        b.read(n, cur.addr(off - row));
                        b.read(n, cur.addr(off + row));
                        b.read(n, rhs.addr(off));
                        b.read(n, aux1.addr(off));
                        b.read(n, aux2.addr(off));
                        b.write(n, cur.addr(off));
                    }
                }
            }
            b.barrier();
            color += 1;
            if color == 2 {
                color = 0;
                it += 1;
            }
            it < iterations
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma_types::Op;

    #[test]
    fn paper_params() {
        let o = Ocean::paper();
        assert_eq!(o.params(), "258*258");
        assert_eq!(o.grid_bytes(), 258 * 258 * 8);
    }

    #[test]
    fn band_edges_are_shared_between_neighbours() {
        let cfg = MachineConfig::paper_baseline();
        let traces = Ocean::paper().scaled(0.5).generate(&cfg);
        // Node 1 must read at least one address that node 0 writes (the
        // boundary row between their bands).
        let written_by_0: std::collections::HashSet<u64> = traces[0]
            .iter()
            .filter_map(|op| match op {
                Op::Write(a) => Some(a.raw()),
                _ => None,
            })
            .collect();
        let shared = traces[1]
            .iter()
            .filter_map(|op| match op {
                Op::Read(a) => Some(a.raw()),
                _ => None,
            })
            .filter(|a| written_by_0.contains(a))
            .count();
        assert!(shared > 0, "neighbour bands must share boundary rows");
    }

    #[test]
    fn sweeps_produce_write_streams() {
        let cfg = MachineConfig::paper_baseline();
        let traces = Ocean::paper().scaled(1.0).generate(&cfg);
        let writes = traces[0].iter().filter(|op| matches!(op, Op::Write(_))).count();
        let reads = traces[0].iter().filter(|op| matches!(op, Op::Read(_))).count();
        assert_eq!(reads, writes * 6, "stencil: six reads per write");
    }

    #[test]
    fn barrier_per_half_sweep() {
        let cfg = MachineConfig::tiny();
        let o = Ocean { n: 64, grids: 6, iterations: 5, scale: 1.0 };
        let traces = o.generate(&cfg);
        let barriers =
            traces[0].iter().filter(|op| matches!(op, Op::Barrier(_))).count();
        assert_eq!(barriers, 10, "two barriers per iteration");
    }
}
