//! Trace analysis utilities.
//!
//! Summarises generated traces — footprint, reference mix, and the
//! sharing-degree histogram that distinguishes e.g. RADIX's all-to-all
//! output array from RAYTRACE's private stacks. Used by the Table-1
//! harness and handy when writing new generators.

use std::collections::HashMap;
use vcoma_types::{MachineConfig, Op, VPage};

/// Summary statistics of one machine's worth of traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Loads across all nodes.
    pub reads: u64,
    /// Stores across all nodes.
    pub writes: u64,
    /// Pure-compute cycles across all nodes.
    pub compute_cycles: u64,
    /// Barrier episodes per node (identical across nodes by construction).
    pub barriers: u64,
    /// Lock acquisitions across all nodes.
    pub lock_acquires: u64,
    /// Distinct pages touched.
    pub pages: u64,
    /// Sharing-degree histogram: `histogram[k]` = pages touched by exactly
    /// `k + 1` nodes.
    pub sharing_histogram: Vec<u64>,
    /// Distinct pages written by two or more nodes (write-shared).
    pub write_shared_pages: u64,
    /// Protection-change operations across all nodes.
    pub protection_changes: u64,
}

impl TraceAnalysis {
    /// Analyses the traces under `cfg`'s page size.
    pub fn of(traces: &[Vec<Op>], cfg: &MachineConfig) -> Self {
        let mut readers_writers: HashMap<VPage, (u64, u64)> = HashMap::new(); // bit masks
        let (mut reads, mut writes, mut compute, mut locks) = (0u64, 0u64, 0u64, 0u64);
        let mut protects = 0u64;
        let mut barriers = 0u64;
        for (n, trace) in traces.iter().enumerate() {
            let bit = 1u64 << (n % 64);
            for op in trace {
                match op {
                    Op::Read(a) => {
                        reads += 1;
                        readers_writers.entry(a.page(cfg.page_size)).or_default().0 |= bit;
                    }
                    Op::Write(a) => {
                        writes += 1;
                        readers_writers.entry(a.page(cfg.page_size)).or_default().1 |= bit;
                    }
                    Op::Compute(c) => compute += c,
                    Op::Barrier(_) => {
                        if n == 0 {
                            barriers += 1;
                        }
                    }
                    Op::Lock(_) => locks += 1,
                    Op::Unlock(_) => {}
                    Op::Protect(..) => protects += 1,
                }
            }
        }
        let buckets = traces.len().max(1);
        let mut sharing = vec![0u64; buckets];
        let mut write_shared = 0u64;
        for &(r, w) in readers_writers.values() {
            let degree = (r | w).count_ones() as usize;
            sharing[degree.saturating_sub(1).min(buckets - 1)] += 1;
            if w.count_ones() >= 2 {
                write_shared += 1;
            }
        }
        TraceAnalysis {
            reads,
            writes,
            compute_cycles: compute,
            barriers,
            lock_acquires: locks,
            pages: readers_writers.len() as u64,
            sharing_histogram: sharing,
            write_shared_pages: write_shared,
            protection_changes: protects,
        }
    }

    /// Total memory references.
    pub fn refs(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of references that are writes.
    pub fn write_fraction(&self) -> f64 {
        if self.refs() == 0 {
            0.0
        } else {
            self.writes as f64 / self.refs() as f64
        }
    }

    /// Footprint in MB for the given page size.
    pub fn footprint_mb(&self, page_size: u64) -> f64 {
        (self.pages * page_size) as f64 / (1 << 20) as f64
    }

    /// Pages touched by two or more nodes.
    pub fn shared_pages(&self) -> u64 {
        self.sharing_histogram.iter().skip(1).sum()
    }

    /// Mean number of nodes touching a page.
    pub fn mean_sharing_degree(&self) -> f64 {
        if self.pages == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .sharing_histogram
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        weighted as f64 / self.pages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma_types::{SyncId, VAddr};

    fn cfg() -> MachineConfig {
        MachineConfig::tiny()
    }

    #[test]
    fn counts_ops_by_kind() {
        let traces = vec![
            vec![
                Op::Read(VAddr::new(0)),
                Op::Write(VAddr::new(0)),
                Op::Compute(7),
                Op::Barrier(SyncId(0)),
                Op::Lock(SyncId(1)),
                Op::Unlock(SyncId(1)),
            ],
            vec![Op::Read(VAddr::new(0x10000)), Op::Barrier(SyncId(0))],
        ];
        let a = TraceAnalysis::of(&traces, &cfg());
        assert_eq!(a.reads, 2);
        assert_eq!(a.writes, 1);
        assert_eq!(a.compute_cycles, 7);
        assert_eq!(a.barriers, 1);
        assert_eq!(a.lock_acquires, 1);
        assert_eq!(a.refs(), 3);
        assert!((a.write_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sharing_histogram_distinguishes_private_and_shared() {
        // Page 0 touched by both nodes (node 1 reads it), page at 0x10000
        // only by node 1.
        let traces = vec![
            vec![Op::Write(VAddr::new(0))],
            vec![Op::Read(VAddr::new(0)), Op::Read(VAddr::new(0x10000))],
        ];
        let a = TraceAnalysis::of(&traces, &cfg());
        assert_eq!(a.pages, 2);
        assert_eq!(a.sharing_histogram[0], 1, "one private page");
        assert_eq!(a.sharing_histogram[1], 1, "one 2-shared page");
        assert_eq!(a.shared_pages(), 1);
        assert_eq!(a.write_shared_pages, 0, "only one node writes page 0");
        assert!((a.mean_sharing_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn write_shared_pages_need_two_writers() {
        let traces = vec![
            vec![Op::Write(VAddr::new(0))],
            vec![Op::Write(VAddr::new(8))],
        ];
        let a = TraceAnalysis::of(&traces, &cfg());
        assert_eq!(a.write_shared_pages, 1);
    }

    #[test]
    fn empty_traces_are_all_zero() {
        let a = TraceAnalysis::of(&[Vec::new(), Vec::new()], &cfg());
        assert_eq!(a.refs(), 0);
        assert_eq!(a.pages, 0);
        assert_eq!(a.write_fraction(), 0.0);
        assert_eq!(a.mean_sharing_degree(), 0.0);
        assert_eq!(a.footprint_mb(4096), 0.0);
    }

    #[test]
    fn radix_output_is_write_shared_while_raytrace_stacks_are_private() {
        use crate::Workload;
        let machine = MachineConfig::paper_baseline();
        let radix = TraceAnalysis::of(&crate::Radix::paper().scaled(0.02).generate(&machine), &machine);
        let ray =
            TraceAnalysis::of(&crate::Raytrace::paper().scaled(0.02).generate(&machine), &machine);
        assert!(
            radix.write_shared_pages * 10 > radix.pages,
            "radix output pages are written by many nodes ({}/{})",
            radix.write_shared_pages,
            radix.pages
        );
        assert!(
            radix.mean_sharing_degree() > ray.mean_sharing_degree() * 0.8
                || ray.shared_pages() > 0,
            "sanity on sharing metrics"
        );
    }
}
