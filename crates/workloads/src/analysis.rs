//! Trace analysis utilities.
//!
//! Summarises generated traces — footprint, reference mix, and the
//! sharing-degree histogram that distinguishes e.g. RADIX's all-to-all
//! output array from RAYTRACE's private stacks. Used by the Table-1
//! harness and handy when writing new generators.

use std::collections::HashMap;
use vcoma_types::{MachineConfig, Op, OpSource, VPage};

/// Summary statistics of one machine's worth of traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Loads across all nodes.
    pub reads: u64,
    /// Stores across all nodes.
    pub writes: u64,
    /// Pure-compute cycles across all nodes.
    pub compute_cycles: u64,
    /// Barrier episodes per node (identical across nodes by construction).
    pub barriers: u64,
    /// Lock acquisitions across all nodes.
    pub lock_acquires: u64,
    /// Distinct pages touched.
    pub pages: u64,
    /// Sharing-degree histogram: `histogram[k]` = pages touched by exactly
    /// `k + 1` nodes.
    pub sharing_histogram: Vec<u64>,
    /// Distinct pages written by two or more nodes (write-shared).
    pub write_shared_pages: u64,
    /// Protection-change operations across all nodes.
    pub protection_changes: u64,
}

/// Running accumulator behind [`TraceAnalysis::of`] and
/// [`TraceAnalysis::of_sources`]: its state is per-page bit masks and
/// counters, independent of how the ops are delivered.
#[derive(Default)]
struct Accumulator {
    readers_writers: HashMap<VPage, (u64, u64)>, // bit masks
    reads: u64,
    writes: u64,
    compute: u64,
    barriers: u64,
    locks: u64,
    protects: u64,
}

impl Accumulator {
    fn push(&mut self, node: usize, op: &Op, page_size: u64) {
        let bit = 1u64 << (node % 64);
        match op {
            Op::Read(a) => {
                self.reads += 1;
                self.readers_writers.entry(a.page(page_size)).or_default().0 |= bit;
            }
            Op::Write(a) => {
                self.writes += 1;
                self.readers_writers.entry(a.page(page_size)).or_default().1 |= bit;
            }
            Op::Compute(c) => self.compute += c,
            Op::Barrier(_) => {
                if node == 0 {
                    self.barriers += 1;
                }
            }
            Op::Lock(_) => self.locks += 1,
            Op::Unlock(_) => {}
            Op::Protect(..) => self.protects += 1,
        }
    }

    fn finish(self, nodes: usize) -> TraceAnalysis {
        let buckets = nodes.max(1);
        let mut sharing = vec![0u64; buckets];
        let mut write_shared = 0u64;
        for &(r, w) in self.readers_writers.values() {
            let degree = (r | w).count_ones() as usize;
            sharing[degree.saturating_sub(1).min(buckets - 1)] += 1;
            if w.count_ones() >= 2 {
                write_shared += 1;
            }
        }
        TraceAnalysis {
            reads: self.reads,
            writes: self.writes,
            compute_cycles: self.compute,
            barriers: self.barriers,
            lock_acquires: self.locks,
            pages: self.readers_writers.len() as u64,
            sharing_histogram: sharing,
            write_shared_pages: write_shared,
            protection_changes: self.protects,
        }
    }
}

impl TraceAnalysis {
    /// Analyses the traces under `cfg`'s page size.
    pub fn of(traces: &[Vec<Op>], cfg: &MachineConfig) -> Self {
        let mut acc = Accumulator::default();
        for (n, trace) in traces.iter().enumerate() {
            for op in trace {
                acc.push(n, op, cfg.page_size);
            }
        }
        acc.finish(traces.len())
    }

    /// Analyses streaming sources without materializing the traces. Ops
    /// are pulled round-robin across the nodes, so phase-chunked sources
    /// (see [`crate::Workload::sources`]) keep at most one generation
    /// phase buffered; the summary is identical to
    /// [`TraceAnalysis::of`] over the materialized traces.
    pub fn of_sources(mut sources: Vec<Box<dyn OpSource>>, cfg: &MachineConfig) -> Self {
        let nodes = sources.len();
        let mut acc = Accumulator::default();
        let mut live: Vec<usize> = (0..nodes).collect();
        while !live.is_empty() {
            live.retain(|&n| match sources[n].next_op() {
                Some(op) => {
                    acc.push(n, &op, cfg.page_size);
                    true
                }
                None => false,
            });
        }
        acc.finish(nodes)
    }

    /// Total memory references.
    pub fn refs(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of references that are writes.
    pub fn write_fraction(&self) -> f64 {
        if self.refs() == 0 {
            0.0
        } else {
            self.writes as f64 / self.refs() as f64
        }
    }

    /// Footprint in MB for the given page size.
    pub fn footprint_mb(&self, page_size: u64) -> f64 {
        (self.pages * page_size) as f64 / (1 << 20) as f64
    }

    /// Pages touched by two or more nodes.
    pub fn shared_pages(&self) -> u64 {
        self.sharing_histogram.iter().skip(1).sum()
    }

    /// Mean number of nodes touching a page.
    pub fn mean_sharing_degree(&self) -> f64 {
        if self.pages == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .sharing_histogram
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        weighted as f64 / self.pages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma_types::{SyncId, VAddr};

    fn cfg() -> MachineConfig {
        MachineConfig::tiny()
    }

    #[test]
    fn counts_ops_by_kind() {
        let traces = vec![
            vec![
                Op::Read(VAddr::new(0)),
                Op::Write(VAddr::new(0)),
                Op::Compute(7),
                Op::Barrier(SyncId(0)),
                Op::Lock(SyncId(1)),
                Op::Unlock(SyncId(1)),
            ],
            vec![Op::Read(VAddr::new(0x10000)), Op::Barrier(SyncId(0))],
        ];
        let a = TraceAnalysis::of(&traces, &cfg());
        assert_eq!(a.reads, 2);
        assert_eq!(a.writes, 1);
        assert_eq!(a.compute_cycles, 7);
        assert_eq!(a.barriers, 1);
        assert_eq!(a.lock_acquires, 1);
        assert_eq!(a.refs(), 3);
        assert!((a.write_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sharing_histogram_distinguishes_private_and_shared() {
        // Page 0 touched by both nodes (node 1 reads it), page at 0x10000
        // only by node 1.
        let traces = vec![
            vec![Op::Write(VAddr::new(0))],
            vec![Op::Read(VAddr::new(0)), Op::Read(VAddr::new(0x10000))],
        ];
        let a = TraceAnalysis::of(&traces, &cfg());
        assert_eq!(a.pages, 2);
        assert_eq!(a.sharing_histogram[0], 1, "one private page");
        assert_eq!(a.sharing_histogram[1], 1, "one 2-shared page");
        assert_eq!(a.shared_pages(), 1);
        assert_eq!(a.write_shared_pages, 0, "only one node writes page 0");
        assert!((a.mean_sharing_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn write_shared_pages_need_two_writers() {
        let traces = vec![
            vec![Op::Write(VAddr::new(0))],
            vec![Op::Write(VAddr::new(8))],
        ];
        let a = TraceAnalysis::of(&traces, &cfg());
        assert_eq!(a.write_shared_pages, 1);
    }

    #[test]
    fn empty_traces_are_all_zero() {
        let a = TraceAnalysis::of(&[Vec::new(), Vec::new()], &cfg());
        assert_eq!(a.refs(), 0);
        assert_eq!(a.pages, 0);
        assert_eq!(a.write_fraction(), 0.0);
        assert_eq!(a.mean_sharing_degree(), 0.0);
        assert_eq!(a.footprint_mb(4096), 0.0);
    }

    #[test]
    fn of_sources_matches_of_for_every_generator() {
        use crate::Workload;
        let cfg = MachineConfig::tiny();
        let workloads: Vec<Box<dyn Workload>> = vec![
            Box::new(crate::UniformRandom { pages: 16, refs_per_node: 200, write_fraction: 0.3 }),
            Box::new(crate::PingPong { rounds: 300 }),
            Box::new(crate::Radix::paper().scaled(0.01)),
            Box::new(crate::Ocean { n: 64, grids: 6, iterations: 4, scale: 1.0 }),
        ];
        for w in &workloads {
            let eager = TraceAnalysis::of(&w.generate(&cfg), &cfg);
            let streamed = TraceAnalysis::of_sources(w.sources(&cfg), &cfg);
            assert_eq!(eager, streamed, "{}", w.name());
        }
    }

    #[test]
    fn radix_output_is_write_shared_while_raytrace_stacks_are_private() {
        use crate::Workload;
        let machine = MachineConfig::paper_baseline();
        let radix = TraceAnalysis::of(&crate::Radix::paper().scaled(0.02).generate(&machine), &machine);
        let ray =
            TraceAnalysis::of(&crate::Raytrace::paper().scaled(0.02).generate(&machine), &machine);
        assert!(
            radix.write_shared_pages * 10 > radix.pages,
            "radix output pages are written by many nodes ({}/{})",
            radix.write_shared_pages,
            radix.pages
        );
        assert!(
            radix.mean_sharing_degree() > ray.mean_sharing_degree() * 0.8
                || ray.shared_pages() > 0,
            "sanity on sharing metrics"
        );
    }
}
