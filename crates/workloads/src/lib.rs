//! Synthetic SPLASH-2-like workload generators.
//!
//! The paper drives its simulations with six SPLASH-2 benchmarks (Table 1).
//! Running the original Sparc binaries is out of scope for this
//! reproduction; instead, each generator here emits a deterministic
//! per-node [`Op`] trace with the *access structure* that
//! the SPLASH-2 characterisation paper and the studied paper itself
//! document for that benchmark:
//!
//! | Generator | Structure reproduced |
//! |---|---|
//! | [`Radix`] | permuted writes into a large output array shared by all nodes — untempered write traffic, no TLB working set below ~512 pages |
//! | [`Fft`] | blocked all-to-all transpose between two large matrices — streaming, so the FLC filters nothing (`L1 ≈ L0`), heavy SLC writebacks |
//! | [`Fmm`] | pointer-chasing over a wide tree working set with strong block-level temporal locality — the FLC filters most references (`L1 ≪ L0`) |
//! | [`Ocean`] | red-black stencil sweeps over row-partitioned grids — nearest-neighbour sharing and big sequential writeback streams |
//! | [`Raytrace`] | read-shared scene, lock-protected work queue, and per-node private ray stacks whose 32 KB-aligned padding causes V-COMA's color conflicts (§5.3); the `v2()` variant realigns them to page size |
//! | [`Barnes`] | octree walks with a small, hot, read-shared upper tree — tiny working set, everything filters |
//!
//! All generators implement [`Workload`]; [`all_benchmarks`] returns the
//! paper's six with Table-1 parameters, and `scaled()` constructors shrink
//! the iteration counts (not the structure) for fast tests.
//!
//! # Example
//!
//! ```
//! use vcoma_workloads::{Workload, Radix};
//! use vcoma_types::MachineConfig;
//!
//! let cfg = MachineConfig::paper_baseline();
//! let traces = Radix::paper().scaled(0.01).generate(&cfg);
//! assert_eq!(traces.len(), 32);
//! assert!(traces.iter().all(|t| !t.is_empty()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod barnes;
mod common;
mod fft;
mod fmm;
mod micro;
mod ocean;
mod radix;
mod raytrace;
mod streaming;
mod trace_io;

pub use analysis::TraceAnalysis;
pub use barnes::Barnes;
pub use common::TraceBuilder;
pub use fft::Fft;
pub use fmm::Fmm;
pub use micro::{PingPong, PrivateStream, UniformRandom};
pub use ocean::Ocean;
pub use radix::Radix;
pub use raytrace::Raytrace;
pub use trace_io::{load_traces, save_traces, ParseTraceError, TRACE_HEADER};

use vcoma_types::{materialize, MachineConfig, Op, OpSource};

/// A benchmark that can generate per-node op streams for the simulator.
///
/// Workloads are `Send + Sync` so a sweep can evaluate many
/// (benchmark, scheme) points against the same boxed workload set from
/// worker threads. The *sources* a workload returns are not `Send`: one
/// run's sources share generator state and are pulled on a single thread.
pub trait Workload: Send + Sync {
    /// The benchmark's name as the paper spells it (e.g. `"RADIX"`).
    fn name(&self) -> &'static str;

    /// The Table-1 parameter string (e.g. `"-n524288 -r2048 -m1048576"`).
    fn params(&self) -> String;

    /// Nominal shared-memory footprint in MB (Table 1's last column).
    fn shared_mb(&self) -> f64;

    /// Returns one lazy op source per node. The generators emit their
    /// traces one barrier-delimited phase at a time, so a replay that
    /// pulls from these sources holds at most one phase in memory.
    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>>;

    /// Generates one trace per node by draining [`Workload::sources`] —
    /// the fully-materialized path for tests, trace files, and callers
    /// that reuse one trace across runs.
    fn generate(&self, cfg: &MachineConfig) -> Vec<Vec<Op>> {
        materialize(self.sources(cfg))
    }
}

/// The paper's six benchmarks with Table-1 parameters, in the paper's
/// order, scaled by `scale` (1.0 = full iteration counts).
pub fn all_benchmarks(scale: f64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Radix::paper().scaled(scale)),
        Box::new(Fft::paper().scaled(scale)),
        Box::new(Fmm::paper().scaled(scale)),
        Box::new(Ocean::paper().scaled(scale)),
        Box::new(Raytrace::paper().scaled(scale)),
        Box::new(Barnes::paper().scaled(scale)),
    ]
}

/// Looks a benchmark up by its (case-insensitive) paper name.
pub fn by_name(name: &str, scale: f64) -> Option<Box<dyn Workload>> {
    let n = name.to_ascii_uppercase();
    all_benchmarks(scale).into_iter().find(|w| w.name() == n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma_types::SyncId;

    #[test]
    fn registry_has_six_paper_benchmarks() {
        let names: Vec<&str> = all_benchmarks(0.01).iter().map(|w| w.name()).collect();
        assert_eq!(names, ["RADIX", "FFT", "FMM", "OCEAN", "RAYTRACE", "BARNES"]);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("radix", 0.01).is_some());
        assert!(by_name("Ocean", 0.01).is_some());
        assert!(by_name("nosuch", 0.01).is_none());
    }

    #[test]
    fn all_benchmarks_generate_consistent_barrier_sequences() {
        let cfg = MachineConfig::paper_baseline();
        for w in all_benchmarks(0.005) {
            let traces = w.generate(&cfg);
            assert_eq!(traces.len(), 32, "{}", w.name());
            let barrier_seq = |t: &[Op]| -> Vec<SyncId> {
                t.iter()
                    .filter_map(|op| match op {
                        Op::Barrier(id) => Some(*id),
                        _ => None,
                    })
                    .collect()
            };
            let first = barrier_seq(&traces[0]);
            for (i, t) in traces.iter().enumerate() {
                assert_eq!(barrier_seq(t), first, "{} node {i}", w.name());
            }
        }
    }

    #[test]
    fn lock_unlock_are_balanced_per_node() {
        let cfg = MachineConfig::paper_baseline();
        for w in all_benchmarks(0.005) {
            for (i, t) in w.generate(&cfg).iter().enumerate() {
                let mut held: std::collections::HashMap<SyncId, i64> = Default::default();
                for op in t {
                    match op {
                        Op::Lock(id) => {
                            let c = held.entry(*id).or_default();
                            assert_eq!(*c, 0, "{} node {i}: nested lock {id}", w.name());
                            *c += 1;
                        }
                        Op::Unlock(id) => {
                            let c = held.entry(*id).or_default();
                            assert_eq!(*c, 1, "{} node {i}: unlock without lock", w.name());
                            *c -= 1;
                        }
                        _ => {}
                    }
                }
                assert!(
                    held.values().all(|&c| c == 0),
                    "{} node {i}: lock held at trace end",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = MachineConfig::paper_baseline();
        for w in all_benchmarks(0.003) {
            assert_eq!(w.generate(&cfg), w.generate(&cfg), "{}", w.name());
        }
    }

    #[test]
    fn every_benchmark_reads_and_writes() {
        let cfg = MachineConfig::paper_baseline();
        for w in all_benchmarks(0.005) {
            let traces = w.generate(&cfg);
            let reads: usize = traces
                .iter()
                .flatten()
                .filter(|op| matches!(op, Op::Read(_)))
                .count();
            let writes: usize = traces
                .iter()
                .flatten()
                .filter(|op| matches!(op, Op::Write(_)))
                .count();
            assert!(reads > 0, "{}", w.name());
            assert!(writes > 0, "{}", w.name());
        }
    }

    #[test]
    fn shared_mb_matches_table_1() {
        let cfg = 0.01;
        let mb: Vec<f64> = all_benchmarks(cfg).iter().map(|w| w.shared_mb()).collect();
        assert_eq!(mb, [6.12, 51.29, 29.23, 15.52, 34.86, 3.94]);
    }

    #[test]
    fn radix_is_write_heavy_relative_to_barnes() {
        let cfg = MachineConfig::paper_baseline();
        let frac = |w: &dyn Workload| {
            let traces = w.generate(&cfg);
            let (mut r, mut wr) = (0usize, 0usize);
            for op in traces.iter().flatten() {
                match op {
                    Op::Read(_) => r += 1,
                    Op::Write(_) => wr += 1,
                    _ => {}
                }
            }
            wr as f64 / (r + wr) as f64
        };
        let radix = frac(&Radix::paper().scaled(0.01));
        let barnes = frac(&Barnes::paper().scaled(0.01));
        assert!(
            radix > barnes + 0.1,
            "RADIX write fraction {radix:.2} must exceed BARNES {barnes:.2}"
        );
    }
}
