//! RAYTRACE: the SPLASH-2 ray tracer (car scene).
//!
//! Table 1: `car`, 34.86 MB shared. The defining behaviours:
//!
//! * a large **read-only scene** traversed with moderate locality;
//! * a lock-protected **work queue** of ray bundles;
//! * per-node **private ray-tree stacks** (`raystruct`) whose
//!   false-sharing padding is aligned on multiples of **32 KB** in the
//!   virtual address space. Paper §5.3: in V-COMA this alignment
//!   concentrates the stacks' hot pages on a fraction of the page colors —
//!   and, because the home node of a page is its low page-number bits, on
//!   only `32 KB / 4 KB = 8`-strided home nodes — causing uneven conflicts
//!   and extra synchronisation time. Re-aligning the padding to one page
//!   (the paper's `DLB/8/V2` bar, [`Raytrace::v2`]) restores the balance.

use crate::common::{layout, scaled_count, TraceBuilder};
use crate::streaming::phased;
use crate::Workload;
use vcoma_types::{MachineConfig, OpSource};

/// The RAYTRACE generator. See the module docs.
#[derive(Debug, Clone)]
pub struct Raytrace {
    /// Ray bundles traced per node per frame.
    pub bundles_per_node: u64,
    /// Frames rendered.
    pub frames: u64,
    /// Alignment of each node's `raystruct` stack in bytes: `32 KB` in the
    /// original source, one page in the `V2` layout.
    pub stack_align: u64,
    /// Fraction of the bundles replayed.
    pub scale: f64,
}

impl Raytrace {
    /// Table-1 parameters with the original 32 KB-aligned padding.
    pub fn paper() -> Self {
        Raytrace { bundles_per_node: 2_500, frames: 2, stack_align: 32 << 10, scale: 1.0 }
    }

    /// The paper's `V2` layout: the same workload with the `raystruct`
    /// padding aligned to one page (4 KB) instead of 32 KB.
    pub fn v2() -> Self {
        Raytrace { stack_align: 4 << 10, ..Raytrace::paper() }
    }

    /// Returns a copy replaying `scale` of the bundles.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }
}

impl Workload for Raytrace {
    fn name(&self) -> &'static str {
        "RAYTRACE"
    }

    fn params(&self) -> String {
        let align = if self.stack_align == 32 << 10 { "car" } else { "car (V2 layout)" };
        align.to_string()
    }

    fn shared_mb(&self) -> f64 {
        34.86
    }

    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        let nodes = cfg.nodes;
        let mut l = layout(cfg);
        let scene = l.region("scene", 32 << 20, cfg.page_size).expect("layout");
        let framebuf = l.region("framebuffer", 1 << 20, cfg.page_size).expect("layout");
        let queue = l.region("workqueue", cfg.page_size, cfg.page_size).expect("layout");
        // The raystruct array: one padded private stack per node. The
        // alignment is the experiment's lever (32 KB vs one page).
        let stacks = l
            .per_node_regions("raystruct", nodes, 16 << 10, self.stack_align)
            .expect("layout");

        let mut b = TraceBuilder::new(nodes, 0x4A75);
        b.think = 3;
        b.think_jitter = 5;
        let page = cfg.page_size;
        let scene_pages = scene.size / page;
        let bundles = scaled_count(self.bundles_per_node, self.scale);
        let frames = self.frames;
        const QUEUE_LOCK: u32 = 0;

        // One step per rendered frame.
        let mut frame = 0u64;
        phased(b, move |b| {
            if frame >= frames {
                return false;
            }
            for (n, stack) in stacks.iter().enumerate() {
                for bu in 0..bundles {
                    // Refill from the shared work queue every couple dozen
                    // bundles (the tracer dequeues work in chunks).
                    if bu % 24 == 0 {
                        b.critical_section(n, QUEUE_LOCK, |b, n| {
                            b.read(n, queue.addr(0));
                            b.write(n, queue.addr(0));
                        });
                    }
                    // Trace the rays: a bundle stays in one scene area
                    // (rays of a bundle are spatially coherent), with a hot
                    // bias towards the part of the model the camera sees.
                    let r = b.rng().gen_range(100);
                    let area = if r < 80 {
                        b.rng().gen_range(24) // hot geometry
                    } else {
                        b.rng().gen_range(scene_pages)
                    };
                    for hop in 0..3u64 {
                        let page_idx = (area + hop / 2) % scene_pages;
                        let off = page_idx * page + b.rng().gen_range(page / 64) * 64;
                        for k in 0..6u64 {
                            b.read(n, scene.addr(off + (k % 3) * 16));
                        }
                        // Push the ray-tree node on the private stack
                        // (fine-grained, hot first three pages).
                        let depth = b.rng().gen_range(12 * 1024 / 8) * 8;
                        b.write(n, stack.addr(depth));
                        b.read(n, stack.addr(depth));
                    }
                    // Pop back up the ray tree and write the pixel.
                    let pop = b.rng().gen_range(1024);
                    b.read(n, stack.addr(pop));
                    let pixel = (n as u64 * bundles + bu) * 32 % framebuf.size;
                    b.write(n, framebuf.addr(pixel));
                }
            }
            b.barrier();
            frame += 1;
            frame < frames
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma_types::Op;

    #[test]
    fn v1_stacks_are_32k_aligned_v2_page_aligned() {
        let cfg = MachineConfig::paper_baseline();
        let hot_stack_pages = |w: &Raytrace| -> Vec<u64> {
            let traces = w.generate(&cfg);
            let mut pages = Vec::new();
            for t in &traces {
                // The last write before the frame barrier hits the stack or
                // framebuffer; find stack pages via the region math instead:
                // stack writes are the high-address private writes below the
                // framebuffer... simpler: collect all written pages per node
                // that no other node touches.
                let _ = t;
            }
            let mut l = crate::common::layout(&cfg);
            l.region("scene", 32 << 20, cfg.page_size).unwrap();
            l.region("framebuffer", 1 << 20, cfg.page_size).unwrap();
            l.region("workqueue", cfg.page_size, cfg.page_size).unwrap();
            let stacks = l
                .per_node_regions("raystruct", cfg.nodes, 16 << 10, w.stack_align)
                .unwrap();
            for s in &stacks {
                pages.push(s.base.raw() / cfg.page_size);
            }
            pages
        };
        let v1 = hot_stack_pages(&Raytrace::paper());
        let v2 = hot_stack_pages(&Raytrace::v2());
        // V1: all stack base pages are 8-page aligned → home nodes stride 8.
        let v1_homes: std::collections::HashSet<u64> =
            v1.iter().map(|p| p % cfg.nodes).collect();
        let v2_homes: std::collections::HashSet<u64> =
            v2.iter().map(|p| p % cfg.nodes).collect();
        assert!(
            v1_homes.len() <= 4,
            "32 KB alignment concentrates stack homes: got {v1_homes:?}"
        );
        assert!(
            v2_homes.len() > v1_homes.len(),
            "V2 spreads stack homes: {} vs {}",
            v2_homes.len(),
            v1_homes.len()
        );
    }

    #[test]
    fn queue_is_lock_protected() {
        let cfg = MachineConfig::paper_baseline();
        let traces = Raytrace::paper().scaled(0.02).generate(&cfg);
        for t in &traces {
            let locks = t.iter().filter(|op| matches!(op, Op::Lock(_))).count();
            assert!(locks > 0);
        }
    }

    #[test]
    fn scene_reads_dominate_stack_writes_exist() {
        let cfg = MachineConfig::paper_baseline();
        let traces = Raytrace::paper().scaled(0.05).generate(&cfg);
        let reads = traces[0].iter().filter(|op| matches!(op, Op::Read(_))).count();
        let writes = traces[0].iter().filter(|op| matches!(op, Op::Write(_))).count();
        assert!(reads > writes, "ray tracing is read-dominated");
        assert!(writes > 0);
    }

    #[test]
    fn params_distinguish_v2() {
        assert_eq!(Raytrace::paper().params(), "car");
        assert_eq!(Raytrace::v2().params(), "car (V2 layout)");
    }
}
