//! FMM: the SPLASH-2 adaptive fast multipole method.
//!
//! Table 1: 16384 particles, 29.23 MB shared. The defining behaviour:
//! pointer-chasing traversals over a large tree of cells. Each traversal
//! step lands on a cell page and performs several fine-grained reads of the
//! cell's fields (multipole expansions), so the FLC absorbs most references
//! — which is why `L1-TLB` misses collapse relative to `L0-TLB` in Figure 8
//! (8.44 % → 1.68 % at 8 entries) — while the *page* working set (a node's
//! subtree plus its interaction lists) is far wider than a small TLB.

use crate::common::{layout, scaled_count, TraceBuilder};
use crate::streaming::phased;
use crate::Workload;
use vcoma_types::{MachineConfig, OpSource};

/// The FMM generator. See the module docs.
#[derive(Debug, Clone)]
pub struct Fmm {
    /// Particle count (Table 1: 16384).
    pub particles: u64,
    /// Traversal steps per node per iteration.
    pub steps_per_node: u64,
    /// Outer iterations (time steps).
    pub iterations: u64,
    /// Fraction of the steps replayed.
    pub scale: f64,
}

impl Fmm {
    /// Table-1 parameters.
    pub fn paper() -> Self {
        Fmm { particles: 16384, steps_per_node: 6_000, iterations: 4, scale: 1.0 }
    }

    /// Returns a copy replaying `scale` of the traversal steps.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }
}

impl Workload for Fmm {
    fn name(&self) -> &'static str {
        "FMM"
    }

    fn params(&self) -> String {
        format!("{} particles", self.particles)
    }

    fn shared_mb(&self) -> f64 {
        29.23
    }

    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        let nodes = cfg.nodes;
        let mut l = layout(cfg);
        // The cell tree dominates the footprint; particles are per-node.
        let cells = l.region("cells", 26 << 20, cfg.page_size).expect("layout");
        let particles_r: Vec<_> = (0..nodes)
            .map(|_| {
                l.region("particles", self.particles / nodes * 128, cfg.page_size)
                    .expect("layout")
            })
            .collect();

        let mut b = TraceBuilder::new(nodes, 0xF33);
        b.think = 3;
        b.think_jitter = 5;
        let page = cfg.page_size;
        let cell_pages = cells.size / page;
        let steps = scaled_count(self.steps_per_node, self.scale);
        let iterations = self.iterations;

        // One step per time-step iteration (traversals + upward pass).
        let mut it = 0u64;
        phased(b, move |b| {
            if it >= iterations {
                return false;
            }
            for (n, particles) in particles_r.iter().enumerate() {
                // A node's subtree: a compact run of hot pages; its
                // interaction lists: a wider window overlapping the
                // neighbouring nodes' subtrees.
                let hot_base = n as u64 * 8 % cell_pages;
                let wide_base = n as u64 * 8;
                let particles_per_node = particles.size / 128;
                for step in 0..steps {
                    let r = b.rng().gen_range(100);
                    let page_idx = if r < 72 {
                        // Hot subtree: 6 pages, Zipf-ish.
                        let h = b.rng().gen_range(6);
                        (hot_base + h * h / 2) % cell_pages
                    } else if r < 92 {
                        // Interaction list: 64-page window around the
                        // subtree (overlaps neighbours).
                        (wide_base + b.rng().gen_range(64)) % cell_pages
                    } else {
                        // Far field: anywhere in the tree.
                        b.rng().gen_range(cell_pages)
                    };
                    // A cell visit: many fine-grained reads of the same two
                    // blocks (multipole coefficients) — the FLC absorbs the
                    // repeats, which is why L1 sees so much less than L0.
                    let cell_off = page_idx * page + b.rng().gen_range(page / 128) * 128;
                    for k in 0..10u64 {
                        b.read(n, cells.addr(cell_off + (k % 2) * 64 + (k % 5) * 8));
                    }
                    // The force accumulates in registers; the particle is
                    // read early and written back once per couple of cell
                    // visits, walking the node's bodies in order.
                    let p_off = (step / 2) % particles_per_node * 128;
                    b.read(n, particles.addr(p_off));
                    if step % 2 == 1 {
                        b.write(n, particles.addr(p_off));
                    }
                }
            }
            // Upward pass: short lock-protected updates of shared tree
            // roots (cells near the base of the region).
            for n in 0..nodes as usize {
                for j in 0..4u32 {
                    b.critical_section(n, j, |b, n| {
                        b.read(n, cells.addr(j as u64 * 128));
                        b.write(n, cells.addr(j as u64 * 128));
                    });
                }
            }
            b.barrier();
            it += 1;
            it < iterations
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma_types::Op;

    #[test]
    fn paper_params() {
        assert_eq!(Fmm::paper().params(), "16384 particles");
    }

    #[test]
    fn references_have_block_level_temporal_locality() {
        // Most references repeat a recently-touched FLC block — the
        // filtering that makes L1 ≪ L0 for FMM.
        let cfg = MachineConfig::paper_baseline();
        let traces = Fmm::paper().scaled(0.05).generate(&cfg);
        let mut last_blocks: std::collections::VecDeque<u64> = Default::default();
        let (mut near, mut total) = (0u64, 0u64);
        for op in &traces[0] {
            if let Op::Read(a) = op {
                let blk = a.raw() / 32;
                total += 1;
                if last_blocks.contains(&blk) {
                    near += 1;
                }
                last_blocks.push_back(blk);
                if last_blocks.len() > 16 {
                    last_blocks.pop_front();
                }
            }
        }
        assert!(
            near as f64 > 0.3 * total as f64,
            "expected block-level reuse, got {near}/{total}"
        );
    }

    #[test]
    fn page_working_set_is_wide() {
        let cfg = MachineConfig::paper_baseline();
        let traces = Fmm::paper().scaled(0.05).generate(&cfg);
        let pages: std::collections::HashSet<u64> = traces[0]
            .iter()
            .filter_map(|op| op.addr())
            .map(|a| a.page(cfg.page_size).raw())
            .collect();
        assert!(pages.len() > 30, "page working set is only {}", pages.len());
    }

    #[test]
    fn tree_roots_are_lock_protected() {
        let cfg = MachineConfig::paper_baseline();
        let traces = Fmm::paper().scaled(0.01).generate(&cfg);
        let locks = traces[0].iter().filter(|op| matches!(op, Op::Lock(_))).count();
        assert!(locks > 0);
    }
}
