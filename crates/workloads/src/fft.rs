//! FFT: the SPLASH-2 six-step complex 1-D FFT.
//!
//! Table 1: `-m20 -t`, 51.29 MB shared (two √n×√n complex matrices plus a
//! roots-of-unity matrix). The defining behaviour: blocked all-to-all
//! **transposes** between the source and destination matrices interleaved
//! with purely local 1-D FFT passes. Everything streams: blocks are touched
//! once per phase, so the FLC filters almost nothing (`L1 ≈ L0` in Figure
//! 8) and the large dirty stripes evicted from the SLC make the `L2-TLB`
//! writeback penalty pronounced.
//!
//! References are emitted every 64 bytes of the streamed stripes (64
//! references per page), which preserves the page-touch sequence — and
//! hence the TLB/DLB behaviour — at a manageable trace length.

use crate::common::{layout, TraceBuilder};
use crate::streaming::phased;
use crate::Workload;
use vcoma_types::{MachineConfig, OpSource};

/// Stream sampling granularity in bytes (one reference per SLC block).
const STRIDE: u64 = 64;

/// The FFT generator. See the module docs.
#[derive(Debug, Clone)]
pub struct Fft {
    /// log2 of the point count (`-m`): `2^m` complex doubles.
    pub m: u32,
    /// Fraction of each stripe replayed per phase (1.0 = all).
    pub scale: f64,
}

impl Fft {
    /// Table-1 parameters.
    pub fn paper() -> Self {
        Fft { m: 20, scale: 1.0 }
    }

    /// Returns a copy replaying `scale` of each stripe.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Bytes of one matrix: `2^m` complex doubles of 16 bytes.
    pub fn matrix_bytes(&self) -> u64 {
        (1u64 << self.m) * 16
    }
}

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn params(&self) -> String {
        format!("-m{} -t", self.m)
    }

    fn shared_mb(&self) -> f64 {
        51.29
    }

    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        let nodes = cfg.nodes;
        let mut l = layout(cfg);
        let bytes = self.matrix_bytes();
        // Odd inter-region skews, as a real allocator's headers produce:
        // without them the three matrices sit exactly 2^24 bytes apart and
        // pages of x/trans/roots alias to the same direct-mapped TLB slot.
        let x = l.region("x", bytes, cfg.page_size).expect("layout");
        l.region("skew1", 3 * cfg.page_size, cfg.page_size).expect("layout");
        let trans = l.region("trans", bytes, cfg.page_size).expect("layout");
        l.region("skew2", 7 * cfg.page_size, cfg.page_size).expect("layout");
        let roots = l.region("roots", bytes, cfg.page_size).expect("layout");

        let mut b = TraceBuilder::new(nodes, 0xFF7);
        b.think = 2;
        b.think_jitter = 5;
        let stripe = bytes / nodes; // each node owns one stripe of rows
        // Sub-block a node exchanges with one partner during a transpose.
        let chunk = stripe / nodes;
        // Scaling must not thin references within a page — that would
        // destroy the per-page burst structure (and the cache filtering)
        // the TLB/DLB comparison depends on. Chunks and stripe pages are
        // therefore always swept at full density; scaling drops whole
        // chunks/pages instead (coverage thinning).
        let page = cfg.page_size;
        let chunk_refs = chunk / STRIDE;
        let chunk_prob = self.scale.clamp(0.0, 1.0);
        let stripe_prob = self.scale.clamp(0.0, 1.0);

        // Every node replays the same *number* of chunks/pages (barrier
        // phases stay balanced); which ones is node-private random.
        let chunks_per_node = ((nodes as f64 * chunk_prob).round() as usize).clamp(1, nodes as usize);

        // The six-step algorithm: transpose, FFT, transpose, FFT,
        // transpose — one step per phase.
        let mut phase = 0u8;
        phased(b, move |b| {
            if phase >= 5 {
                return false;
            }
            let transpose = |b: &mut TraceBuilder, src: &vcoma_vm::Region, dst: &vcoma_vm::Region| {
                for n in 0..nodes as usize {
                    // Blocked all-to-all: with partner j, read own chunk j
                    // and write into partner j's stripe at own chunk index.
                    // Each node visits its partners in its own random
                    // order, as the real staggered transpose does once
                    // nodes drift apart.
                    let mut order: Vec<usize> = (0..nodes as usize).collect();
                    b.rng().shuffle(&mut order);
                    for &partner in order.iter().take(chunks_per_node) {
                        let src_base = n as u64 * stripe + partner as u64 * chunk;
                        let dst_base = partner as u64 * stripe + n as u64 * chunk;
                        // The real transpose stages a whole sub-block
                        // through the cache: read it, then write it out
                        // transposed.
                        for k in 0..chunk_refs {
                            b.read(n, src.addr(src_base + k * STRIDE % chunk));
                        }
                        for k in 0..chunk_refs {
                            b.write(n, dst.addr(dst_base + k * STRIDE % chunk));
                        }
                    }
                }
                b.barrier();
            };
            let local_fft = |b: &mut TraceBuilder, m: &vcoma_vm::Region| {
                for n in 0..nodes as usize {
                    let base = n as u64 * stripe;
                    // Work page-by-page so coverage thinning keeps
                    // density, in a node-private random page order: nodes
                    // drift apart in a real run, so the same stripe offset
                    // is NOT processed by all nodes at the same instant
                    // (it would pile onto a single home node, since
                    // stripes are 128-page aligned).
                    let pages_per_stripe = stripe / page;
                    let refs_per_stripe_page = page / STRIDE;
                    let pages_taken = ((pages_per_stripe as f64 * stripe_prob).round() as usize)
                        .clamp(1, pages_per_stripe as usize);
                    let mut order: Vec<u64> = (0..pages_per_stripe).collect();
                    b.rng().shuffle(&mut order);
                    for &p in order.iter().take(pages_taken) {
                        for k in 0..refs_per_stripe_page {
                            let off =
                                p * page + k * (page / refs_per_stripe_page).max(STRIDE) % page;
                            b.read(n, m.addr(base + off));
                            b.read(n, roots.addr(base + off));
                            b.write(n, m.addr(base + off));
                        }
                    }
                }
                b.barrier();
            };
            match phase {
                0 => transpose(b, &x, &trans),
                1 => local_fft(b, &trans),
                2 => transpose(b, &trans, &x),
                3 => local_fft(b, &x),
                _ => transpose(b, &x, &trans),
            }
            phase += 1;
            phase < 5
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma_types::Op;

    #[test]
    fn paper_params() {
        let f = Fft::paper();
        assert_eq!(f.params(), "-m20 -t");
        assert_eq!(f.matrix_bytes(), 16 << 20);
    }

    #[test]
    fn transpose_writes_reach_every_partner_stripe() {
        let cfg = MachineConfig::paper_baseline();
        let f = Fft { m: 16, scale: 1.0 };
        let traces = f.generate(&cfg);
        let stripe = f.matrix_bytes() / cfg.nodes;
        // Node 0's transpose writes must land in all 32 stripes of trans.
        let mut stripes_written = std::collections::HashSet::new();
        for op in &traces[0] {
            if let Op::Write(a) = op {
                let rel = a.raw() - 0x1000_0000;
                if rel >= f.matrix_bytes() && rel < 2 * f.matrix_bytes() {
                    stripes_written.insert((rel - f.matrix_bytes()) / stripe);
                }
            }
        }
        assert_eq!(stripes_written.len() as u64, cfg.nodes);
    }

    #[test]
    fn streaming_mostly_unique_blocks() {
        // FFT is a stream: within a phase a node rarely revisits a block,
        // which is why the FLC cannot filter it (L1 ≈ L0 in the paper).
        let cfg = MachineConfig::paper_baseline();
        let traces = Fft { m: 18, scale: 0.5 }.generate(&cfg);
        let mut seen = std::collections::HashSet::new();
        let mut reads = 0u64;
        for op in &traces[0] {
            if let Op::Read(a) = op {
                reads += 1;
                seen.insert(a.raw() / 32);
            }
        }
        assert!(
            seen.len() as f64 > 0.45 * reads as f64,
            "FFT reads should be mostly unique blocks: {} of {reads}",
            seen.len()
        );
    }

    #[test]
    fn five_phases_mean_five_barriers() {
        let cfg = MachineConfig::tiny();
        let traces = Fft { m: 12, scale: 1.0 }.generate(&cfg);
        let barriers =
            traces[0].iter().filter(|op| matches!(op, Op::Barrier(_))).count();
        assert_eq!(barriers, 5);
    }
}
