//! Micro-workloads for tests and ablation benchmarks.

use crate::common::{layout, TraceBuilder};
use crate::streaming::phased;
use crate::Workload;
use vcoma_types::{MachineConfig, OpSource};

/// Uniformly random reads/writes over a configurable page pool — a
/// locality-free worst case for every translation scheme.
#[derive(Debug, Clone)]
pub struct UniformRandom {
    /// Pages in the pool.
    pub pages: u64,
    /// References per node.
    pub refs_per_node: u64,
    /// Probability that a reference is a write.
    pub write_fraction: f64,
}

impl UniformRandom {
    /// A default pool: 256 pages, 10 000 refs per node, 30 % writes.
    pub fn new() -> Self {
        UniformRandom { pages: 256, refs_per_node: 10_000, write_fraction: 0.3 }
    }
}

impl Default for UniformRandom {
    fn default() -> Self {
        UniformRandom::new()
    }
}

impl Workload for UniformRandom {
    fn name(&self) -> &'static str {
        "UNIFORM"
    }

    fn params(&self) -> String {
        format!("{} pages, {} refs/node", self.pages, self.refs_per_node)
    }

    fn shared_mb(&self) -> f64 {
        (self.pages * 4096) as f64 / (1 << 20) as f64
    }

    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        let mut l = layout(cfg);
        let pool =
            l.region("pool", self.pages * cfg.page_size, cfg.page_size).expect("layout");
        let mut b = TraceBuilder::new(cfg.nodes, 0x0111);
        b.think = 1;
        let node_count = cfg.nodes as usize;
        let refs_per_node = self.refs_per_node;
        let write_fraction = self.write_fraction;
        // One step per node's reference stream.
        let mut node = 0usize;
        phased(b, move |b| {
            if node >= node_count {
                return false;
            }
            for _ in 0..refs_per_node {
                let off = b.rng().gen_range(pool.size / 32) * 32;
                if b.rng().gen_bool(write_fraction) {
                    b.write(node, pool.addr(off));
                } else {
                    b.read(node, pool.addr(off));
                }
            }
            node += 1;
            node < node_count
        })
    }
}

/// Each node streams privately over its own region — no sharing at all.
#[derive(Debug, Clone)]
pub struct PrivateStream {
    /// Bytes per node.
    pub bytes_per_node: u64,
    /// Sequential passes.
    pub passes: u64,
}

impl PrivateStream {
    /// A default stream: 256 KB per node, two passes.
    pub fn new() -> Self {
        PrivateStream { bytes_per_node: 256 << 10, passes: 2 }
    }
}

impl Default for PrivateStream {
    fn default() -> Self {
        PrivateStream::new()
    }
}

impl Workload for PrivateStream {
    fn name(&self) -> &'static str {
        "PRIVATE-STREAM"
    }

    fn params(&self) -> String {
        format!("{} KB/node × {}", self.bytes_per_node >> 10, self.passes)
    }

    fn shared_mb(&self) -> f64 {
        0.0
    }

    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        let mut l = layout(cfg);
        let regions = l
            .per_node_regions("stream", cfg.nodes, self.bytes_per_node, cfg.page_size)
            .expect("layout");
        let mut b = TraceBuilder::new(cfg.nodes, 0x5771);
        b.think = 1;
        let bytes_per_node = self.bytes_per_node;
        let passes = self.passes;
        // One step per sequential pass over every node's region.
        let mut pass = 0u64;
        phased(b, move |b| {
            if pass >= passes {
                return false;
            }
            for (n, region) in regions.iter().enumerate() {
                b.stream_read(n, region, 0, bytes_per_node, 64);
                b.stream_write(n, region, 0, bytes_per_node, 64);
            }
            pass += 1;
            pass < passes
        })
    }
}

/// Two nodes alternately write and read one block — maximal coherence
/// traffic.
#[derive(Debug, Clone)]
pub struct PingPong {
    /// Round trips.
    pub rounds: u64,
}

impl PingPong {
    /// A default of 1000 rounds.
    pub fn new() -> Self {
        PingPong { rounds: 1000 }
    }
}

impl Default for PingPong {
    fn default() -> Self {
        PingPong::new()
    }
}

impl Workload for PingPong {
    fn name(&self) -> &'static str {
        "PING-PONG"
    }

    fn params(&self) -> String {
        format!("{} rounds", self.rounds)
    }

    fn shared_mb(&self) -> f64 {
        0.0
    }

    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        assert!(cfg.nodes >= 2, "ping-pong needs at least two nodes");
        let mut l = layout(cfg);
        let flag = l.region("flag", cfg.page_size, cfg.page_size).expect("layout");
        let mut b = TraceBuilder::new(cfg.nodes, 0x1919);
        b.think = 1;
        let rounds = self.rounds;
        // 256 rounds per step: the pattern has no barriers, so chunk it to
        // keep the buffered window small.
        let mut done = 0u64;
        phased(b, move |b| {
            if done >= rounds {
                return false;
            }
            let batch = 256.min(rounds - done);
            for _ in 0..batch {
                b.write(0, flag.addr(0));
                b.read(1, flag.addr(0));
                b.write(1, flag.addr(64));
                b.read(0, flag.addr(64));
            }
            done += batch;
            done < rounds
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma_types::Op;

    #[test]
    fn uniform_random_spans_the_pool() {
        let cfg = MachineConfig::tiny();
        let traces = UniformRandom { pages: 16, refs_per_node: 1000, write_fraction: 0.5 }
            .generate(&cfg);
        let pages: std::collections::HashSet<u64> = traces
            .iter()
            .flatten()
            .filter_map(|op| op.addr())
            .map(|a| a.page(cfg.page_size).raw())
            .collect();
        assert_eq!(pages.len(), 16);
    }

    #[test]
    fn private_stream_has_no_cross_node_sharing() {
        let cfg = MachineConfig::tiny();
        let traces = PrivateStream { bytes_per_node: 4096, passes: 1 }.generate(&cfg);
        let pages_of = |t: &[Op]| -> std::collections::HashSet<u64> {
            t.iter().filter_map(|op| op.addr()).map(|a| a.page(1024).raw()).collect()
        };
        let p0 = pages_of(&traces[0]);
        let p1 = pages_of(&traces[1]);
        assert!(p0.is_disjoint(&p1));
    }

    #[test]
    fn ping_pong_alternates_writers() {
        let cfg = MachineConfig::tiny();
        let traces = PingPong { rounds: 3 }.generate(&cfg);
        assert!(traces[0].iter().any(|op| matches!(op, Op::Write(_))));
        assert!(traces[1].iter().any(|op| matches!(op, Op::Write(_))));
        assert!(traces[2].is_empty());
    }

    #[test]
    fn micro_names_and_footprints() {
        assert_eq!(UniformRandom::new().name(), "UNIFORM");
        assert!(UniformRandom::new().shared_mb() > 0.0);
        assert_eq!(PrivateStream::new().shared_mb(), 0.0);
        assert_eq!(PingPong::new().name(), "PING-PONG");
        assert!(!PingPong::new().params().is_empty());
        assert!(!PrivateStream::new().params().is_empty());
    }
}
