//! BARNES: the SPLASH-2 Barnes-Hut hierarchical n-body simulation.
//!
//! Table 1: 16384 particles, 3.94 MB shared — the smallest footprint of the
//! six. The defining behaviour: octree force walks that start at a tiny,
//! intensely read-shared upper tree and descend into per-node subtrees,
//! giving the tightest page locality of the suite; every scheme's
//! translation misses are low, and the cache filtering drives them lower
//! still (Figure 8: 2.68 % → 0.06 % across L0 → L3 at 8 entries).

use crate::common::{layout, scaled_count, TraceBuilder};
use crate::streaming::phased;
use crate::Workload;
use vcoma_types::{MachineConfig, OpSource};

/// The BARNES generator. See the module docs.
#[derive(Debug, Clone)]
pub struct Barnes {
    /// Particle count (Table 1: 16384).
    pub particles: u64,
    /// Force walks per node per time step.
    pub walks_per_node: u64,
    /// Time steps.
    pub iterations: u64,
    /// Fraction of the walks replayed.
    pub scale: f64,
}

impl Barnes {
    /// Table-1 parameters.
    pub fn paper() -> Self {
        Barnes { particles: 16384, walks_per_node: 4_500, iterations: 4, scale: 1.0 }
    }

    /// Returns a copy replaying `scale` of the walks.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }
}

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "BARNES"
    }

    fn params(&self) -> String {
        format!("{} particles", self.particles)
    }

    fn shared_mb(&self) -> f64 {
        3.94
    }

    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        let nodes = cfg.nodes;
        let mut l = layout(cfg);
        let tree = l.region("octree", 3 << 20, cfg.page_size).expect("layout");
        let bodies: Vec<_> = (0..nodes)
            .map(|_| {
                l.region("bodies", self.particles / nodes * 64, cfg.page_size).expect("layout")
            })
            .collect();

        let mut b = TraceBuilder::new(nodes, 0xBA21);
        b.think = 3;
        b.think_jitter = 5;
        let page = cfg.page_size;
        let tree_pages = tree.size / page;
        let walks = scaled_count(self.walks_per_node, self.scale);
        let iterations = self.iterations;
        let scale = self.scale;

        // One step per time step (force walks + tree rebuild).
        let mut it = 0u64;
        phased(b, move |b| {
            if it >= iterations {
                return false;
            }
            for (n, body_region) in bodies.iter().enumerate() {
                let subtree_base = (n as u64 * 4) % tree_pages;
                let bodies_per_node = body_region.size / 64;
                for w in 0..walks {
                    // Every walk starts at the shared root cells (one very
                    // hot page read by all nodes).
                    let root_off = b.rng().gen_range(4) * 128;
                    for k in 0..4u64 {
                        b.read(n, tree.addr(root_off + k * 8));
                    }
                    // Descend: mostly the node's own subtree (4 hot pages),
                    // sometimes a neighbour's, rarely anywhere.
                    let r = b.rng().gen_range(100);
                    let page_idx = if r < 88 {
                        subtree_base + b.rng().gen_range(4)
                    } else if r < 98 {
                        (subtree_base + b.rng().gen_range(16)) % tree_pages
                    } else {
                        b.rng().gen_range(tree_pages)
                    };
                    let cell_off = page_idx * page + b.rng().gen_range(page / 128) * 128;
                    for k in 0..8u64 {
                        b.read(n, tree.addr(cell_off + (k % 2) * 32 + (k % 4) * 8));
                    }
                    // Update the walked body: walks proceed over the node's
                    // bodies in order (sequential private pages).
                    let body = (w % bodies_per_node) * 64;
                    b.read(n, body_region.addr(body));
                    b.write(n, body_region.addr(body));
                }
            }
            // Tree rebuild: each node republishes its subtree cells
            // (writes to the shared tree), then a barrier.
            for n in 0..nodes as usize {
                let subtree_base = (n as u64 * 4) % tree_pages;
                for k in 0..scaled_count(64, scale) {
                    let off = subtree_base * page + (k * 128) % (4 * page);
                    b.write(n, tree.addr(off));
                }
            }
            b.barrier();
            it += 1;
            it < iterations
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcoma_types::Op;

    #[test]
    fn paper_params() {
        assert_eq!(Barnes::paper().params(), "16384 particles");
        assert_eq!(Barnes::paper().shared_mb(), 3.94);
    }

    #[test]
    fn root_pages_are_read_by_every_node() {
        let cfg = MachineConfig::paper_baseline();
        let traces = Barnes::paper().scaled(0.01).generate(&cfg);
        for (i, t) in traces.iter().enumerate() {
            let hits_root = t.iter().any(|op| {
                matches!(op, Op::Read(a) if a.raw() >= 0x1000_0000 && a.raw() < 0x1000_0000 + 4096)
            });
            assert!(hits_root, "node {i} never reads the root page");
        }
    }

    #[test]
    fn page_working_set_is_tighter_than_fmm() {
        let cfg = MachineConfig::paper_baseline();
        let count_pages = |traces: &[Vec<Op>]| {
            traces[0]
                .iter()
                .filter_map(|op| op.addr())
                .map(|a| a.page(cfg.page_size).raw())
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let barnes = count_pages(&Barnes::paper().scaled(0.05).generate(&cfg));
        let fmm = count_pages(&crate::Fmm::paper().scaled(0.05).generate(&cfg));
        assert!(
            barnes < fmm,
            "BARNES working set ({barnes} pages) should be tighter than FMM ({fmm})"
        );
    }

    #[test]
    fn tree_rebuild_writes_shared_pages() {
        let cfg = MachineConfig::paper_baseline();
        let traces = Barnes::paper().scaled(0.01).generate(&cfg);
        let tree_writes = traces[0]
            .iter()
            .filter(|op| {
                matches!(op, Op::Write(a) if a.raw() < 0x1000_0000 + (3 << 20))
            })
            .count();
        assert!(tree_writes > 0);
    }
}
