//! Shared trace-construction helpers.

use vcoma_types::{DetRng, MachineConfig, Op, SyncId, VAddr};
use vcoma_vm::Region;

/// Builder for one machine's worth of per-node traces.
///
/// Wraps the per-node op vectors with helpers for the patterns the
/// generators share: sequential streams at a chosen granularity, global
/// barriers, think-time insertion, and deterministic randomness.
#[derive(Debug)]
pub struct TraceBuilder {
    traces: Vec<Vec<Op>>,
    rng: DetRng,
    next_barrier: u32,
    /// Compute cycles inserted before each memory reference (per-op think
    /// time), emulating the instructions between shared accesses.
    pub think: u64,
    /// Additional uniformly-random think cycles in `0..=think_jitter` per
    /// reference. Real processors never run in perfect lockstep; without
    /// jitter, barrier-aligned generators produce phase-locked bursts that
    /// pile onto the same home nodes simultaneously — an artifact, not a
    /// workload property.
    pub think_jitter: u64,
}

impl TraceBuilder {
    /// Creates a builder for `nodes` nodes with a benchmark-specific seed.
    pub fn new(nodes: u64, seed: u64) -> Self {
        TraceBuilder {
            traces: vec![Vec::new(); nodes as usize],
            rng: DetRng::new(seed),
            next_barrier: 0,
            think: 2,
            think_jitter: 0,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.traces.len()
    }

    /// The builder's deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    fn think_cycles(&mut self) -> u64 {
        if self.think_jitter > 0 {
            self.think + self.rng.gen_range(self.think_jitter + 1)
        } else {
            self.think
        }
    }

    /// Emits a read of `addr` on `node`, preceded by the think time.
    pub fn read(&mut self, node: usize, addr: VAddr) {
        let think = self.think_cycles();
        if think > 0 {
            self.traces[node].push(Op::Compute(think));
        }
        self.traces[node].push(Op::Read(addr));
    }

    /// Emits a write of `addr` on `node`, preceded by the think time.
    pub fn write(&mut self, node: usize, addr: VAddr) {
        let think = self.think_cycles();
        if think > 0 {
            self.traces[node].push(Op::Compute(think));
        }
        self.traces[node].push(Op::Write(addr));
    }

    /// Emits pure computation on `node`.
    pub fn compute(&mut self, node: usize, cycles: u64) {
        self.traces[node].push(Op::Compute(cycles));
    }

    /// Emits a global barrier (all nodes participate) and returns its id.
    pub fn barrier(&mut self) -> SyncId {
        let id = SyncId(self.next_barrier);
        self.next_barrier += 1;
        for t in &mut self.traces {
            t.push(Op::Barrier(id));
        }
        id
    }

    /// Emits a lock/unlock pair around `body` on `node`. Lock ids live in a
    /// separate space from barrier ids (offset by `1 << 16`).
    pub fn critical_section(
        &mut self,
        node: usize,
        lock: u32,
        body: impl FnOnce(&mut Self, usize),
    ) {
        let id = SyncId(lock | 1 << 16);
        self.traces[node].push(Op::Lock(id));
        body(self, node);
        self.traces[node].push(Op::Unlock(id));
    }

    /// Emits a sequential read stream over `[start, start+len)` of `region`
    /// on `node`, one reference every `stride` bytes.
    pub fn stream_read(&mut self, node: usize, region: &Region, start: u64, len: u64, stride: u64) {
        let mut off = start;
        while off < start + len {
            self.read(node, region.addr(off));
            off += stride;
        }
    }

    /// Emits a sequential write stream over `[start, start+len)` of
    /// `region` on `node`, one reference every `stride` bytes.
    pub fn stream_write(&mut self, node: usize, region: &Region, start: u64, len: u64, stride: u64) {
        let mut off = start;
        while off < start + len {
            self.write(node, region.addr(off));
            off += stride;
        }
    }

    /// Finishes the build, returning the per-node traces.
    pub fn into_traces(self) -> Vec<Vec<Op>> {
        self.traces
    }

    /// Drains the ops emitted since construction (or the previous drain),
    /// keeping the RNG, barrier-id and think-time state intact so
    /// generation can continue where it left off. The streaming sources
    /// use this to hand the replay engine one phase at a time instead of
    /// the whole trace.
    pub fn take_phase(&mut self) -> Vec<Vec<Op>> {
        self.traces.iter_mut().map(std::mem::take).collect()
    }

    /// Total ops across all nodes so far.
    pub fn total_ops(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }
}

/// Scales an iteration count by `scale`, flooring at 1.
pub(crate) fn scaled_count(base: u64, scale: f64) -> u64 {
    ((base as f64 * scale).round() as u64).max(1)
}

/// The standard virtual base address generators lay their data at (clear of
/// page zero and low segments).
pub(crate) const DATA_BASE: u64 = 0x1000_0000;

/// Convenience: a layout starting at [`DATA_BASE`].
pub(crate) fn layout(_cfg: &MachineConfig) -> vcoma_vm::AddressSpaceLayout {
    vcoma_vm::AddressSpaceLayout::new(DATA_BASE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_carry_think_time() {
        let mut b = TraceBuilder::new(2, 1);
        b.think = 3;
        b.read(0, VAddr::new(0x100));
        b.write(1, VAddr::new(0x200));
        let t = b.into_traces();
        assert_eq!(t[0], vec![Op::Compute(3), Op::Read(VAddr::new(0x100))]);
        assert_eq!(t[1], vec![Op::Compute(3), Op::Write(VAddr::new(0x200))]);
    }

    #[test]
    fn zero_think_time_emits_bare_refs() {
        let mut b = TraceBuilder::new(1, 1);
        b.think = 0;
        b.read(0, VAddr::new(0x100));
        assert_eq!(b.into_traces()[0], vec![Op::Read(VAddr::new(0x100))]);
    }

    #[test]
    fn barrier_is_global_and_sequenced() {
        let mut b = TraceBuilder::new(3, 1);
        let id0 = b.barrier();
        let id1 = b.barrier();
        assert_ne!(id0, id1);
        for t in b.into_traces() {
            assert_eq!(t, vec![Op::Barrier(id0), Op::Barrier(id1)]);
        }
    }

    #[test]
    fn critical_section_wraps_body() {
        let mut b = TraceBuilder::new(1, 1);
        b.think = 0;
        b.critical_section(0, 5, |b, n| b.write(n, VAddr::new(0x40)));
        let t = &b.into_traces()[0];
        assert!(matches!(t[0], Op::Lock(_)));
        assert!(matches!(t[1], Op::Write(_)));
        assert!(matches!(t[2], Op::Unlock(_)));
    }

    #[test]
    fn streams_cover_the_range_at_stride() {
        let region = Region { name: "r", base: VAddr::new(0x1000), size: 256 };
        let mut b = TraceBuilder::new(1, 1);
        b.think = 0;
        b.stream_read(0, &region, 0, 128, 32);
        b.stream_write(0, &region, 128, 128, 64);
        let t = &b.into_traces()[0];
        assert_eq!(t.len(), 4 + 2);
        assert_eq!(t[0], Op::Read(VAddr::new(0x1000)));
        assert_eq!(t[3], Op::Read(VAddr::new(0x1060)));
        assert_eq!(t[4], Op::Write(VAddr::new(0x1080)));
        assert_eq!(t[5], Op::Write(VAddr::new(0x10C0)));
    }

    #[test]
    fn scaled_count_floors_at_one() {
        assert_eq!(scaled_count(100, 0.5), 50);
        assert_eq!(scaled_count(100, 0.0001), 1);
        assert_eq!(scaled_count(0, 1.0), 1);
    }

    #[test]
    fn total_ops_counts_everything() {
        let mut b = TraceBuilder::new(2, 1);
        b.think = 0;
        b.read(0, VAddr::new(0));
        b.barrier();
        assert_eq!(b.total_ops(), 3);
    }
}
