//! Bit-level reproducibility: a run is a pure function of (configuration,
//! seed, workload).

use vcoma::workloads::{all_benchmarks, UniformRandom};
use vcoma::{all_schemes, Scheme, Simulator};

#[test]
fn identical_seeds_give_identical_reports() {
    for scheme in all_schemes() {
        let sim = Simulator::new(scheme).entries(8).seed(1234);
        let w = UniformRandom { pages: 200, refs_per_node: 1500, write_fraction: 0.4 };
        let (a, b) = (sim.run(&w), sim.run(&w));
        assert_eq!(a.exec_time(), b.exec_time(), "{scheme}");
        assert_eq!(a.total_refs(), b.total_refs(), "{scheme}");
        assert_eq!(
            a.translation_misses_total(0),
            b.translation_misses_total(0),
            "{scheme}"
        );
        assert_eq!(a.aggregate_breakdown(), b.aggregate_breakdown(), "{scheme}");
        assert_eq!(a.protocol(), b.protocol(), "{scheme}");
        assert_eq!(a.net_msgs(), b.net_msgs(), "{scheme}");
        for (na, nb) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(na.time, nb.time, "{scheme}");
            assert_eq!(na.translation, nb.translation, "{scheme}");
        }
    }
}

#[test]
fn different_seeds_perturb_random_replacement() {
    // With random TLB replacement, different seeds give (almost surely)
    // different miss counts on a thrashing workload.
    let w = UniformRandom { pages: 64, refs_per_node: 4000, write_fraction: 0.3 };
    let a = Simulator::new(Scheme::L0_TLB).entries(8).seed(1).run(&w);
    let b = Simulator::new(Scheme::L0_TLB).entries(8).seed(2).run(&w);
    assert_ne!(
        a.translation_misses_total(0),
        b.translation_misses_total(0),
        "seeds must drive the random replacement"
    );
    // But the reference stream itself is seed-independent.
    assert_eq!(a.total_refs(), b.total_refs());
}

#[test]
fn benchmark_generation_is_reproducible_through_the_facade() {
    let machine = vcoma::MachineConfig::paper_baseline();
    for w in all_benchmarks(0.002) {
        assert_eq!(w.generate(&machine), w.generate(&machine), "{}", w.name());
    }
}

#[test]
fn warmup_changes_stats_not_determinism() {
    let w = UniformRandom { pages: 64, refs_per_node: 1000, write_fraction: 0.3 };
    let cold = Simulator::new(Scheme::V_COMA).seed(7).run(&w);
    let warm_a = Simulator::new(Scheme::V_COMA).seed(7).warmup().run(&w);
    let warm_b = Simulator::new(Scheme::V_COMA).seed(7).warmup().run(&w);
    assert_eq!(warm_a.exec_time(), warm_b.exec_time());
    // The warm window must see fewer protocol cold fills than the cold one.
    assert!(warm_a.protocol().cold_fills < cold.protocol().cold_fills);
    // And the same number of references.
    assert_eq!(warm_a.total_refs(), cold.total_refs());
}
