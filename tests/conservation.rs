//! Conservation and accounting invariants that must hold across the whole
//! stack, whatever the scheme or workload.

use vcoma::workloads::all_benchmarks;
use vcoma::{all_schemes, Simulator};
use vcoma_types::Op;

#[test]
fn reference_counts_match_the_traces() {
    let machine = vcoma::MachineConfig::paper_baseline();
    for w in all_benchmarks(0.003) {
        let traces = w.generate(&machine);
        let trace_reads = traces
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Read(_)))
            .count() as u64;
        let trace_writes = traces
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::Write(_)))
            .count() as u64;
        for scheme in all_schemes() {
            let report = Simulator::new(scheme).run_traces(traces.clone());
            assert_eq!(report.total_refs(), trace_reads + trace_writes, "{scheme}");
            assert_eq!(report.total_writes(), trace_writes, "{scheme}");
        }
    }
}

#[test]
fn time_accounting_is_consistent() {
    for w in all_benchmarks(0.003) {
        for scheme in all_schemes() {
            let report = Simulator::new(scheme).run(w.as_ref());
            for (i, n) in report.nodes().iter().enumerate() {
                // A node's final clock equals the sum of its breakdown
                // categories: every elapsed cycle is attributed exactly
                // once.
                assert_eq!(
                    n.time,
                    n.breakdown.total(),
                    "{} {scheme} node {i}: clock {} != breakdown {}",
                    w.name(),
                    n.time,
                    n.breakdown.total()
                );
                // Busy time includes at least the one issue cycle per ref.
                assert!(n.breakdown.busy >= n.refs, "{} {scheme} node {i}", w.name());
            }
        }
    }
}

#[test]
fn fine_breakdown_conserves_every_cycle() {
    // The fine latency attribution behind `--breakdown` must account for
    // every simulated cycle, per node and machine-wide, in all five
    // schemes — and refine the coarse Figure-10 categories exactly.
    for w in all_benchmarks(0.003) {
        for scheme in all_schemes() {
            let report = Simulator::new(scheme).run(w.as_ref());
            for (i, n) in report.nodes().iter().enumerate() {
                let ctx = || format!("{} {scheme} node {i}", w.name());
                assert_eq!(n.time, n.fine.total(), "{}: fine breakdown leaks cycles", ctx());
                // Category-by-category refinement of the coarse breakdown.
                assert_eq!(n.fine.busy, n.breakdown.busy, "{}", ctx());
                assert_eq!(n.fine.sync, n.breakdown.sync, "{}", ctx());
                assert_eq!(n.fine.local_stall, n.breakdown.local_stall, "{}", ctx());
                assert_eq!(
                    n.fine.translation(),
                    n.breakdown.translation,
                    "{}: tlb_walk + dlb_lookup must equal coarse translation",
                    ctx()
                );
                assert_eq!(
                    n.fine.coherence + n.fine.network + n.fine.queue,
                    n.breakdown.remote_stall,
                    "{}: coherence + network + queue must equal coarse remote stall",
                    ctx()
                );
            }
            let fine = report.aggregate_fine();
            assert_eq!(
                fine.total(),
                report.simulated_cycles(),
                "{} {scheme}: machine-wide fine total != simulated cycles",
                w.name()
            );
            // Scheme-specific attribution: node TLB walks belong to the
            // TLB schemes, home DLB lookups to V-COMA.
            if scheme == vcoma::Scheme::V_COMA {
                assert_eq!(fine.tlb_walk, 0, "{}: V-COMA has no node TLBs", w.name());
            } else {
                assert_eq!(fine.dlb_lookup, 0, "{} {scheme}: only V-COMA has DLBs", w.name());
            }
            // The contention-free paper model never queues at ports.
            assert_eq!(fine.queue, 0, "{} {scheme}: queueing without contention", w.name());
        }
    }
}

#[test]
fn metrics_reconcile_with_report_counters() {
    // The observation-only metrics layer must agree with the first-class
    // statistics it mirrors.
    for w in all_benchmarks(0.003) {
        for scheme in all_schemes() {
            let report = Simulator::new(scheme).run(w.as_ref());
            let m = report.metrics();
            let reads: u64 = report.nodes().iter().map(|n| n.reads).sum();
            let writes = report.total_writes();
            let h_read = m.histogram("latency.read");
            let h_write = m.histogram("latency.write");
            assert_eq!(
                h_read.map_or(0, |h| h.count),
                reads,
                "{} {scheme}: read-latency histogram must have one sample per load",
                w.name()
            );
            assert_eq!(
                h_write.map_or(0, |h| h.count),
                writes,
                "{} {scheme}: write-latency histogram must have one sample per store",
                w.name()
            );
            assert_eq!(
                m.counter("transition.invalidated"),
                report.protocol().invalidations,
                "{} {scheme}: transition counter disagrees with ProtocolStats",
                w.name()
            );
            assert_eq!(
                m.counter("transition.spilled"),
                report.protocol().spills,
                "{} {scheme}",
                w.name()
            );
        }
    }
}

#[test]
fn translation_misses_never_exceed_accesses() {
    for w in all_benchmarks(0.003) {
        for scheme in all_schemes() {
            let report = Simulator::new(scheme).run(w.as_ref());
            assert!(
                report.translation_misses_total(0) <= report.translation_accesses_total(0),
                "{} {scheme}",
                w.name()
            );
        }
    }
}

#[test]
fn protocol_hits_plus_transactions_cover_probes() {
    // Every memory reference that reaches the AM level either hits locally
    // or produces exactly one protocol transaction; the sum is bounded by
    // the reference count.
    for w in all_benchmarks(0.003) {
        for scheme in all_schemes() {
            let report = Simulator::new(scheme).run(w.as_ref());
            let p = report.protocol();
            let am_level = p.local_read_hits + p.local_write_hits + p.remote_transactions();
            assert!(
                am_level <= report.total_refs(),
                "{} {scheme}: AM-level events {} exceed refs {}",
                w.name(),
                am_level,
                report.total_refs()
            );
        }
    }
}

#[test]
fn over_capacity_workload_swaps_and_conserves_refs() {
    // 400 distinct pages on the 256-page tiny machine: the page daemon
    // must swap, and accounting must stay exact, in every scheme.
    use vcoma::{MachineConfig, VAddr};
    for scheme in all_schemes() {
        let machine = MachineConfig::tiny();
        let mut traces = vec![Vec::new(); machine.nodes as usize];
        for (i, tr) in traces.iter_mut().enumerate() {
            for p in 0..400u64 {
                let page = (p * 3 + i as u64 * 17) % 400;
                tr.push(Op::Read(VAddr::new(page * machine.page_size)));
            }
        }
        let report =
            Simulator::new(scheme).machine(machine).run_traces(traces);
        assert_eq!(report.total_refs(), 1600, "{scheme}");
        assert!(report.swap_outs() > 0, "{scheme}: must swap");
        for n in report.nodes() {
            assert_eq!(n.time, n.breakdown.total(), "{scheme}");
        }
    }
}

#[test]
fn protection_changes_are_accounted_and_deterministic() {
    use vcoma::{Protection, Scheme, VAddr};
    let mk = || {
        let mut traces = vec![Vec::new(); 32];
        for (i, tr) in traces.iter_mut().enumerate() {
            for k in 0..50u64 {
                tr.push(Op::Read(VAddr::new((k % 8) * 4096)));
                if i == 0 && k % 10 == 9 {
                    let prot = if k % 20 == 9 {
                        Protection::read_only()
                    } else {
                        Protection::read_write()
                    };
                    tr.push(Op::Protect(VAddr::new((k % 8) * 4096), prot));
                }
            }
        }
        traces
    };
    for scheme in [Scheme::L0_TLB, Scheme::L3_TLB, Scheme::V_COMA] {
        let a = Simulator::new(scheme).seed(4).run_traces(mk());
        let b = Simulator::new(scheme).seed(4).run_traces(mk());
        assert_eq!(a.exec_time(), b.exec_time(), "{scheme}");
        assert_eq!(a.total_refs(), 32 * 50, "{scheme}: protects are not refs");
        let shootdowns: u64 =
            a.nodes().iter().map(|n| n.translation[0].shootdowns).sum();
        assert!(shootdowns > 0, "{scheme}: protection changes must shoot down");
    }
}

#[test]
fn fixed_seed_grid_conserves_refs_and_messages() {
    // A plain (non-proptest) grid over all five schemes and two master
    // seeds, so the accounting invariants are exercised even when the
    // `proptest-tests` feature is off: every reference is a read or a
    // write, every translation/cache access is a hit or a miss, and the
    // protocol's remote transactions are carried by crossbar messages.
    for &seed in &[1u64, 0x5EED] {
        for w in all_benchmarks(0.003) {
            for scheme in all_schemes() {
                let report = Simulator::new(scheme).seed(seed).run(w.as_ref());
                for (i, n) in report.nodes().iter().enumerate() {
                    let ctx = || format!("{} {scheme} seed {seed} node {i}", w.name());
                    assert_eq!(n.refs, n.reads + n.writes, "{}", ctx());
                    for t in &n.translation {
                        assert_eq!(t.hits() + t.misses, t.accesses, "{}", ctx());
                    }
                    assert_eq!(n.flc.hits() + n.flc.misses(), n.flc.accesses(), "{}", ctx());
                    assert_eq!(n.slc.hits() + n.slc.misses(), n.slc.accesses(), "{}", ctx());
                }
                let p = report.protocol();
                assert!(
                    p.remote_transactions() <= report.net_msgs(),
                    "{} {scheme} seed {seed}: {} remote transactions but only {} messages",
                    w.name(),
                    p.remote_transactions(),
                    report.net_msgs()
                );
                assert!(
                    p.injections_forwarded <= p.injection_hops,
                    "{} {scheme} seed {seed}: forwarded acceptances without hops",
                    w.name()
                );
            }
        }
    }
}

#[test]
fn no_spills_on_paper_workloads() {
    // The paper's working sets fit (§5.1): the injection protocol must
    // never be forced to spill a master copy to backing store.
    for w in all_benchmarks(0.01) {
        for scheme in all_schemes() {
            let report = Simulator::new(scheme).run(w.as_ref());
            assert_eq!(
                report.protocol().spills,
                0,
                "{} {scheme}: memory pressure forced {} spills",
                w.name(),
                report.protocol().spills
            );
        }
    }
}
