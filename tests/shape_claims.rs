//! The paper's shape claims (DESIGN.md §4), asserted end to end at a
//! reduced scale. Absolute numbers differ from the paper — the claims here
//! are about orderings and magnitudes of effects.

use vcoma::workloads::{Radix, Raytrace};
use vcoma::{Scheme, TlbOrg};
use vcoma_experiments::{fig8, fig9, table2, table4, ExperimentConfig};

fn cfg() -> ExperimentConfig {
    ExperimentConfig::smoke().with_scale(0.02)
}

/// Claim 1 (filtering effect): translation *accesses* fall monotonically
/// with the TLB level, for every benchmark.
#[test]
fn filtering_effect_on_access_counts() {
    let cfg = cfg();
    for w in cfg.benchmarks() {
        // Strict ordering within the physically-addressed family (same
        // protocol dynamics)…
        let mut last = u64::MAX;
        for scheme in [Scheme::L0_TLB, Scheme::L1_TLB, Scheme::L2_TLB_NO_WB] {
            let report = cfg.simulator(scheme).entries(8).run(w.as_ref());
            let acc = report.translation_accesses_total(0);
            assert!(acc <= last, "{} {}: {} > {}", w.name(), scheme, acc, last);
            last = acc;
        }
        // …while L3 and V-COMA use page coloring / virtual homes, which
        // changes the coherence dynamics (RAYTRACE's 32 KB-aligned stacks
        // conflict under coloring — the paper's §5.3 effect), so they get
        // a 15 % band against L2 and must sit well below L0.
        let l0 = cfg
            .simulator(Scheme::L0_TLB)
            .entries(8)
            .run(w.as_ref())
            .translation_accesses_total(0);
        for scheme in [Scheme::L3_TLB, Scheme::V_COMA] {
            let acc = cfg
                .simulator(scheme)
                .entries(8)
                .run(w.as_ref())
                .translation_accesses_total(0);
            assert!(
                acc as f64 <= (last as f64 * 1.15).max(l0 as f64),
                "{} {}: {} above L2's {} band",
                w.name(),
                scheme,
                acc,
                last
            );
        }
    }
}

/// Claim 2 (writeback effect): L2-TLB with writeback translation misses
/// strictly more than L2-TLB/no_wback on the writeback-heavy streams (FFT,
/// OCEAN, RADIX).
#[test]
fn writeback_effect_on_l2() {
    let cfg = cfg();
    for w in cfg.benchmarks() {
        if !matches!(w.name(), "FFT" | "OCEAN" | "RADIX") {
            continue;
        }
        let with_wb = cfg.simulator(Scheme::L2_TLB).entries(8).run(w.as_ref());
        let no_wb = cfg.simulator(Scheme::L2_TLB_NO_WB).entries(8).run(w.as_ref());
        assert!(
            with_wb.translation_misses_total(0) > no_wb.translation_misses_total(0),
            "{}: writebacks must add L2 misses ({} vs {})",
            w.name(),
            with_wb.translation_misses_total(0),
            no_wb.translation_misses_total(0)
        );
    }
}

/// Claim 3 (sharing + prefetching): for RADIX, a small DLB beats a much
/// larger private TLB (the paper: a 16-entry DLB beats a 512-entry L3
/// TLB).
#[test]
fn radix_dlb_sharing_and_prefetching() {
    let cfg = cfg();
    let w = Radix::paper().scaled(cfg.scale);
    let dlb16 = cfg.simulator(Scheme::V_COMA).entries(16).run(&w);
    let tlb512 = cfg.simulator(Scheme::L3_TLB).entries(512).run(&w);
    assert!(
        dlb16.translation_misses_total(0) < tlb512.translation_misses_total(0),
        "16-entry DLB ({}) must beat a 512-entry L3 TLB ({})",
        dlb16.translation_misses_total(0),
        tlb512.translation_misses_total(0)
    );
}

/// Claim 4: RADIX shows no clear TLB working set until the output-array
/// size (~512 pages): the L0 miss curve decays slowly, then collapses.
#[test]
fn radix_has_no_small_working_set() {
    let cfg = cfg();
    // The flat-curve claim needs enough permutation volume for the output
    // pages to be revisited; replay 30 % of the keys.
    let w = Radix::paper().scaled(0.3);
    let specs: Vec<(u64, TlbOrg)> = [8u64, 64, 512, 2048]
        .iter()
        .map(|&s| (s, TlbOrg::FullyAssociative))
        .collect();
    let report = cfg.simulator(Scheme::L0_TLB).specs(specs).run(&w);
    // Compare *capacity* misses (above the compulsory floor measured at
    // 2048 entries, where everything fits).
    let floor = report.translation_misses_total(3) as f64;
    let cap8 = report.translation_misses_total(0) as f64 - floor;
    let cap64 = report.translation_misses_total(1) as f64 - floor;
    let cap512 = report.translation_misses_total(2) as f64 - floor;
    assert!(cap8 > 0.0, "the 8-entry TLB must thrash");
    assert!(
        cap64 > 0.5 * cap8,
        "8→64 entries must barely help (capacity {cap8:.0} → {cap64:.0})"
    );
    assert!(
        cap512 < 0.25 * cap8,
        "the curve must collapse once the arrays fit (capacity {cap8:.0} → {cap512:.0})"
    );
}

/// Claim 5 (Figure 9): the direct-mapped penalty shrinks with the level —
/// the mean DM/FA gap at L0 exceeds V-COMA's on average.
#[test]
fn dm_gap_shrinks_with_level() {
    let cfg = cfg();
    let panels = fig9::run(&cfg);
    let mean_gap = |scheme| {
        let mut sum = 0.0;
        for p in &panels {
            let c = p.curves.iter().find(|c| c.scheme == scheme).unwrap();
            sum += c.mean_gap();
        }
        sum / panels.len() as f64
    };
    let l0 = mean_gap(Scheme::L0_TLB);
    let vc = mean_gap(Scheme::V_COMA);
    assert!(
        vc <= l0 + 0.05,
        "DM/FA gap must not grow towards V-COMA (L0 {l0:.2}x vs V-COMA {vc:.2}x)"
    );
}

/// Claim 6 (Table 4): the DLB's translation overhead is a small fraction
/// of the L0 TLB's for every benchmark.
#[test]
fn dlb_overhead_is_negligible() {
    let cols = table4::run(&cfg());
    for c in &cols {
        assert!(
            c.dlb[0] < 0.5 * c.l0[0] + 1e-9,
            "{}: DLB overhead ratio {:.4} not well below L0's {:.4}",
            c.benchmark,
            c.dlb[0],
            c.l0[0]
        );
    }
}

/// Claim 7 (Figure 10 RAYTRACE): the page-aligned V2 layout does not
/// perform worse than the 32 KB-aligned layout under V-COMA (the paper
/// reports a large sync-time recovery; we assert the direction).
#[test]
fn raytrace_v2_recovers_time() {
    let cfg = cfg();
    let v1 = cfg
        .simulator(Scheme::V_COMA)
        .entries(8)
        .warmup()
        .run(&Raytrace::paper().scaled(cfg.scale));
    let v2 = cfg
        .simulator(Scheme::V_COMA)
        .entries(8)
        .warmup()
        .run(&Raytrace::v2().scaled(cfg.scale));
    assert!(
        v2.exec_time() <= v1.exec_time() * 102 / 100,
        "V2 layout must not be slower than the 32 KB-aligned one ({} vs {})",
        v2.exec_time(),
        v1.exec_time()
    );
}

/// Claim 8 (miss-curve sanity): every Figure 8 curve is monotone
/// non-increasing in the TLB/DLB size (up to random-replacement noise).
#[test]
fn fig8_curves_are_monotone() {
    let cfg = cfg();
    for panel in fig8::run_schemes(&cfg, &[Scheme::L0_TLB, Scheme::L2_TLB, Scheme::V_COMA]) {
        for c in &panel.curves {
            assert!(
                c.is_monotone_decreasing(0.2),
                "{} {}: {:?}",
                panel.benchmark,
                c.scheme,
                c.points
            );
        }
    }
}

/// Claim 9 (Table 2 aggregate): summed over the six benchmarks, the
/// V-COMA miss rate is the lowest of all five schemes at 32 and 128
/// entries.
#[test]
fn vcoma_is_lowest_in_aggregate() {
    let rows = table2::run(&cfg());
    for si in 1..table2::TABLE2_SIZES.len() {
        let sums: Vec<f64> = (0..table2::TABLE2_SCHEMES.len())
            .map(|pi| rows.iter().map(|r| r.rate(si, pi)).sum())
            .collect();
        let vcoma = sums[table2::TABLE2_SCHEMES.len() - 1];
        for (pi, &s) in sums.iter().enumerate().take(table2::TABLE2_SCHEMES.len() - 1) {
            assert!(
                vcoma <= s + 1e-12,
                "size {}: V-COMA aggregate {vcoma:.4} above {} ({s:.4})",
                table2::TABLE2_SIZES[si],
                table2::TABLE2_SCHEMES[pi]
            );
        }
    }
}
