//! Golden-report regression suite.
//!
//! The rendered Table 2, Figure 8 and Figure 10 artifacts at smoke scale
//! are snapshotted as byte-exact fixtures under `tests/golden/`. Any
//! change to trace generation, cache/TLB behaviour, protocol timing or
//! rendering shows up here as a diff — Figure 10 in particular carries
//! absolute cycle counts, so even a one-cycle latency change fails the
//! suite.
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```text
//! VCOMA_BLESS=1 cargo test -p vcoma-integration --test golden_reports
//! ```

use std::fs;
use std::path::PathBuf;
use vcoma_experiments::{fig10, fig8, table2, ExperimentConfig};

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// The suite runs the sweeps on two workers: the fixtures double as a
/// check that parallel evaluation leaves the rendered bytes untouched.
fn cfg() -> ExperimentConfig {
    ExperimentConfig::smoke().with_jobs(2)
}

fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("VCOMA_BLESS").is_some() {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&path, actual).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); create it with VCOMA_BLESS=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "golden mismatch for {name}; if the change is intentional, regenerate with\n\
         VCOMA_BLESS=1 cargo test -p vcoma-integration --test golden_reports\n\
         --- expected ---\n{expected}--- actual ---\n{actual}"
    );
}

#[test]
fn table2_matches_golden() {
    let rows = table2::run(&cfg());
    check("table2_smoke.txt", &table2::render(&rows).render());
}

#[test]
fn fig8_matches_golden() {
    let mut out = String::new();
    for panel in fig8::run(&cfg()) {
        out.push_str(&fig8::render(&panel).render());
        out.push('\n');
    }
    check("fig8_smoke.txt", &out);
}

#[test]
fn fig10_matches_golden() {
    let mut out = String::new();
    for panel in fig10::run(&cfg()) {
        out.push_str(&fig10::render(&panel).render());
        out.push('\n');
    }
    check("fig10_smoke.txt", &out);
}
