//! Event-ring overflow behaviour: the ring keeps the newest events, counts
//! what it sheds, folds across parallel jobs, and surfaces overflow in a
//! full simulation report.

use vcoma::metrics::{Event, EventRing, EventSnapshot, Mergeable, MetricsRegistry};
use vcoma::workloads::{UniformRandom, Workload};
use vcoma::{Machine, MachineConfig, Scheme, SimConfig};

fn event(cycle: u64) -> Event {
    Event { cycle, node: (cycle % 4) as u16, kind: "tlb_miss", addr: cycle * 64 }
}

#[test]
fn overflow_counts_drops_and_keeps_the_newest_events() {
    let mut ring = EventRing::new(8);
    for c in 0..20 {
        ring.push(event(c));
    }
    assert_eq!(ring.dropped(), 12);
    let snap = ring.snapshot();
    assert_eq!(snap.len(), 8);
    // Oldest-first, and only the most recent survive.
    let cycles: Vec<u64> = snap.iter().map(|e| e.cycle).collect();
    assert_eq!(cycles, (12..20).collect::<Vec<u64>>());
}

#[test]
fn zero_capacity_ring_drops_everything() {
    let mut ring = EventRing::new(0);
    for c in 0..5 {
        ring.push(event(c));
    }
    assert_eq!(ring.dropped(), 5);
    assert!(ring.snapshot().is_empty());
}

#[test]
fn registry_snapshot_carries_the_drop_count_through_merge() {
    let mut a = MetricsRegistry::new(4);
    let mut b = MetricsRegistry::new(4);
    for c in 0..10 {
        a.trace(event(c));
        b.trace(event(100 + c));
    }
    let mut sa = a.snapshot();
    let sb = b.snapshot();
    assert_eq!(sa.dropped_events, 6);
    sa.merge(&sb);
    assert_eq!(sa.dropped_events, 12);
    assert_eq!(sa.events.len(), 8, "merge concatenates both retained tails");
}

#[test]
fn event_snapshot_vectors_merge_in_order() {
    let mut a: Vec<EventSnapshot> = EventRing::new(4).snapshot();
    let mut ring = EventRing::new(4);
    ring.push(event(7));
    a.merge(&ring.snapshot());
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].cycle, 7);
    assert_eq!(a[0].kind, "tlb_miss");
}

#[test]
fn a_real_run_overflows_a_tiny_ring_without_losing_counters() {
    // A 4-entry ring under a TLB-thrashing workload must shed events…
    let machine = MachineConfig::tiny();
    let w = UniformRandom { pages: 200, refs_per_node: 1000, write_fraction: 0.3 };
    let traces = w.generate(&machine);
    let run = |capacity: usize| {
        let cfg = SimConfig::new(machine.clone(), Scheme::L0_TLB)
            .with_seed(9)
            .with_event_capacity(capacity);
        Machine::new(cfg).run(traces.clone()).unwrap()
    };
    let small = run(4);
    assert!(small.metrics().dropped_events > 0, "4-entry ring must overflow");
    assert!(small.metrics().events.len() <= 4);

    // …while a large ring on the same run drops nothing, and the small
    // ring's drop count accounts exactly for the difference.
    let big = run(1 << 20);
    assert_eq!(big.metrics().dropped_events, 0);
    assert_eq!(
        big.metrics().events.len() as u64,
        small.metrics().events.len() as u64 + small.metrics().dropped_events
    );
    // Overflow touches only the ring: counters and histograms agree.
    assert_eq!(big.metrics().counters, small.metrics().counters);
    assert_eq!(big.exec_time(), small.exec_time());
}
