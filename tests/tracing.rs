//! Tracing-inertness integration suite.
//!
//! Causal tracing is an observer: enabling it must not move a single
//! cycle, reference count or message anywhere in the simulation. These
//! tests run every scheme with tracing on and off and require the
//! reports, the rendered sweep tables and their CSV serializations to be
//! byte-identical, and the golden fixtures to stay valid in a process
//! that has already run traced sweeps.

use std::path::PathBuf;
use vcoma_experiments::render::TextTable;
use vcoma_experiments::sweep::{self, SweepPoint, SweepResult};
use vcoma_experiments::{table2, trace, ExperimentConfig};
use vcoma::{all_schemes, paper_schemes, Scheme, SimReport};

fn cfg() -> ExperimentConfig {
    ExperimentConfig::smoke().with_jobs(2)
}

/// Runs `scheme` over the first smoke benchmark, traced or untraced.
fn run_one(cfg: &ExperimentConfig, scheme: Scheme, traced: bool) -> SimReport {
    let benchmarks = cfg.benchmarks();
    let w = &benchmarks[0];
    let sim = cfg.simulator(scheme);
    let sim = if traced { sim.trace(trace::SAMPLE_EVERY, trace::CAPACITY) } else { sim };
    sim.run(w.as_ref())
}

/// A small artifact-style sweep table over all schemes, built from either
/// traced or untraced runs. Everything an artifact table could print is
/// derived from these report fields, so byte-equality here means every
/// golden fixture and sweep CSV is independent of the tracing toggle.
fn sweep_table(cfg: &ExperimentConfig, traced: bool) -> TextTable {
    let points: Vec<SweepPoint<Scheme>> = all_schemes()
        .into_iter()
        .map(|scheme| SweepPoint::new(scheme.to_string(), scheme))
        .collect();
    let rows = sweep::run("tracing-inertness", cfg.effective_jobs(), points, |&scheme| {
        let r = run_one(cfg, scheme, traced);
        let cycles = r.simulated_cycles();
        SweepResult::new(
            vec![
                scheme.to_string(),
                r.exec_time().to_string(),
                r.total_refs().to_string(),
                r.net_msgs().to_string(),
                r.net_bytes().to_string(),
                r.swap_outs().to_string(),
                format!("{:?}", r.aggregate_breakdown()),
                format!("{:?}", r.aggregate_fine()),
            ],
            cycles,
        )
    });
    let mut t = TextTable::new(vec![
        "scheme",
        "exec cycles",
        "refs",
        "net msgs",
        "net bytes",
        "swap outs",
        "breakdown",
        "fine",
    ]);
    for row in rows {
        t.row(row);
    }
    t
}

#[test]
fn tracing_is_inert_for_every_scheme() {
    let cfg = cfg();
    for scheme in all_schemes() {
        let plain = run_one(&cfg, scheme, false);
        let traced = run_one(&cfg, scheme, true);
        assert!(plain.trace().is_none(), "{scheme}: untraced run must not carry spans");
        let snap = traced.trace().unwrap_or_else(|| panic!("{scheme}: traced run carries spans"));
        assert!(snap.sampled_txns > 0, "{scheme}: sampler admitted nothing");
        assert_eq!(plain.exec_time(), traced.exec_time(), "{scheme}: exec time moved");
        assert_eq!(plain.total_refs(), traced.total_refs(), "{scheme}: refs moved");
        assert_eq!(plain.total_writes(), traced.total_writes(), "{scheme}: writes moved");
        assert_eq!(plain.net_msgs(), traced.net_msgs(), "{scheme}: messages moved");
        assert_eq!(plain.net_bytes(), traced.net_bytes(), "{scheme}: bytes moved");
        assert_eq!(plain.swap_outs(), traced.swap_outs(), "{scheme}: swap-outs moved");
        assert_eq!(
            format!("{:?}", plain.aggregate_breakdown()),
            format!("{:?}", traced.aggregate_breakdown()),
            "{scheme}: time breakdown moved"
        );
        assert_eq!(
            format!("{:?}", plain.aggregate_fine()),
            format!("{:?}", traced.aggregate_fine()),
            "{scheme}: fine latency breakdown moved"
        );
        assert_eq!(
            format!("{:?}", plain.protocol()),
            format!("{:?}", traced.protocol()),
            "{scheme}: protocol counters moved"
        );
        assert_eq!(
            format!("{:?}", plain.nodes()),
            format!("{:?}", traced.nodes()),
            "{scheme}: per-node stats moved"
        );
    }
}

#[test]
fn traced_and_untraced_sweep_csvs_are_byte_identical() {
    let cfg = cfg();
    let plain = sweep_table(&cfg, false);
    let traced = sweep_table(&cfg, true);
    assert_eq!(plain.render(), traced.render(), "rendered sweep tables diverged");
    assert_eq!(plain.to_csv(), traced.to_csv(), "sweep CSVs diverged");
}

#[test]
fn goldens_stay_byte_identical_with_tracing_in_process() {
    // A full traced sweep first: if the tracer leaked into any shared
    // state, the golden fixture comparison below would diverge.
    let cfg = cfg();
    let rows = trace::run(&cfg);
    assert_eq!(rows.len(), paper_schemes().len());
    let rendered = table2::render(&table2::run(&cfg)).render();
    let path =
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/table2_smoke.txt"));
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {} ({e})", path.display()));
    assert_eq!(rendered, golden, "table2 golden moved after traced runs in the same process");
}
