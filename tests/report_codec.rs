//! Canonical `SimReport` serialization: round-trip and format-pinning
//! suite for `vcoma::codec` (the sweep server's store format).
//!
//! The encoded envelope of a small deterministic run — including metrics,
//! per-node latency breakdowns and an optional trace snapshot — is
//! snapshotted byte-exactly under `tests/golden/`. A change to any
//! serialized shape fails here loudly, which is the contract that makes
//! on-disk result stores trustworthy: stale stores must break visibly,
//! not decode into subtly different reports.
//!
//! To regenerate after an intentional format change (bump
//! `codec::VERSION` too):
//!
//! ```text
//! VCOMA_BLESS=1 cargo test -p vcoma-integration --test report_codec
//! ```

use std::fs;
use std::path::PathBuf;
use vcoma::workloads::UniformRandom;
use vcoma::{codec, Scheme, SimReport, Simulator};

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("VCOMA_BLESS").is_some() {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&path, actual).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {} ({e}); create it with VCOMA_BLESS=1", path.display())
    });
    assert!(
        expected == actual,
        "golden mismatch for {name}; if the format change is intentional, bump \
         codec::VERSION and regenerate with\n\
         VCOMA_BLESS=1 cargo test -p vcoma-integration --test report_codec"
    );
}

fn workload() -> UniformRandom {
    UniformRandom { pages: 32, refs_per_node: 200, write_fraction: 0.3 }
}

fn traced_report() -> SimReport {
    Simulator::new(Scheme::V_COMA).tiny().seed(9).trace(4, 1 << 14).run(&workload())
}

#[test]
fn encoded_report_matches_golden_fixture() {
    let report = traced_report();
    let text = codec::encode(&report, "golden-fingerprint", "golden-key");
    check("simreport_v1.json", &text);
}

#[test]
fn traced_report_round_trips_exactly() {
    let report = traced_report();
    assert!(report.trace().is_some(), "run was traced");
    let text = codec::encode(&report, "fp", "key");
    let decoded = codec::decode(&text, report.config().clone()).expect("decodes");
    assert_eq!(decoded.fingerprint, "fp");
    assert_eq!(decoded.key, "key");
    // The decoded report is indistinguishable from the original, down to
    // metrics counters, histograms, latency breakdowns and trace spans.
    assert_eq!(format!("{:?}", decoded.report), format!("{report:?}"));
    // And a second encode of the decoded report is byte-identical.
    assert_eq!(codec::encode(&decoded.report, "fp", "key"), text);
}

#[test]
fn untraced_report_round_trips_with_null_trace() {
    let report = Simulator::new(Scheme::L0_TLB).tiny().seed(3).run(&workload());
    assert!(report.trace().is_none());
    let text = codec::encode(&report, "fp", "key");
    assert!(text.contains("\"trace\": null"));
    let decoded = codec::decode(&text, report.config().clone()).expect("decodes");
    assert!(decoded.report.trace().is_none());
    assert_eq!(format!("{:?}", decoded.report), format!("{report:?}"));
}

#[test]
fn aggregates_survive_the_round_trip() {
    let report = traced_report();
    let text = codec::encode(&report, "fp", "key");
    let decoded = codec::decode(&text, report.config().clone()).expect("decodes").report;
    assert_eq!(decoded.exec_time(), report.exec_time());
    assert_eq!(decoded.simulated_cycles(), report.simulated_cycles());
    assert_eq!(decoded.total_refs(), report.total_refs());
    assert_eq!(decoded.aggregate_fine().total(), report.aggregate_fine().total());
    assert_eq!(decoded.translation_misses_total(0), report.translation_misses_total(0));
    assert_eq!(decoded.net_msgs(), report.net_msgs());
    assert_eq!(decoded.metrics(), report.metrics());
    assert_eq!(decoded.trace(), report.trace());
}
