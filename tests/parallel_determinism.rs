//! Determinism under parallelism: `--jobs N` must never change results.
//!
//! Every artifact module is run twice — once on a single sweep worker,
//! once on eight — and the rendered CSVs must be byte-identical. This is
//! the library-level counterpart of diffing the CLI's `--out` directories
//! (which `scripts/ci.sh` also does).

use vcoma_experiments::{
    ablations, ccnuma, fig10, fig11, fig8, fig9, table1, table2, table3, table4,
    ExperimentConfig,
};

fn all_csvs(cfg: &ExperimentConfig) -> Vec<(&'static str, String)> {
    let join = |csvs: Vec<String>| csvs.join("\n");
    vec![
        ("table1", table1::render(&table1::run(cfg)).to_csv()),
        (
            "fig8",
            join(fig8::run(cfg).iter().map(|p| fig8::render(p).to_csv()).collect()),
        ),
        ("table2", table2::render(&table2::run(cfg)).to_csv()),
        ("table3", table3::render(&table3::run(cfg)).to_csv()),
        (
            "fig9",
            join(fig9::run(cfg).iter().map(|p| fig9::render(p).to_csv()).collect()),
        ),
        ("table4", table4::render(&table4::run(cfg)).to_csv()),
        (
            "fig10",
            join(fig10::run(cfg).iter().map(|p| fig10::render(p).to_csv()).collect()),
        ),
        ("fig11", fig11::render(&fig11::run(cfg)).to_csv()),
        (
            "ablations",
            ablations::render(&{
                let mut rows = ablations::contention(cfg);
                rows.extend(ablations::coloring(cfg));
                rows.extend(ablations::injection(cfg));
                rows.extend(ablations::software_managed(cfg));
                rows
            })
            .to_csv(),
        ),
        ("ccnuma", ccnuma::render(&ccnuma::run(cfg)).to_csv()),
    ]
}

#[test]
fn every_artifact_is_identical_between_jobs_1_and_8() {
    let base = ExperimentConfig::smoke().with_scale(0.003);
    let serial = all_csvs(&base.clone().with_jobs(1));
    let parallel = all_csvs(&base.with_jobs(8));
    assert_eq!(serial.len(), parallel.len());
    for ((name, a), (name_b, b)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(name, name_b);
        assert!(
            a == b,
            "{name}: parallel sweep (8 workers) diverged from serial\n\
             --- jobs 1 ---\n{a}--- jobs 8 ---\n{b}"
        );
    }
}
