//! Smoke test: every experiment module produces a renderable artifact.

use vcoma_experiments::{
    ablations, fig10, fig11, fig8, fig9, table1, table2, table3, table4, ExperimentConfig,
};

fn cfg() -> ExperimentConfig {
    ExperimentConfig::smoke().with_scale(0.005)
}

#[test]
fn table1_renders() {
    let t = table1::render(&table1::run(&cfg()));
    assert_eq!(t.len(), 6);
    assert!(t.render().contains("RADIX"));
    assert!(!t.to_csv().is_empty());
}

#[test]
fn fig8_renders() {
    let panels = fig8::run_schemes(&cfg(), &[vcoma::Scheme::L0_TLB, vcoma::Scheme::V_COMA]);
    assert_eq!(panels.len(), 6);
    for p in &panels {
        let t = fig8::render(p);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains(&p.benchmark));
    }
}

#[test]
fn table2_renders() {
    let t = table2::render(&table2::run(&cfg()));
    assert_eq!(t.len(), 6);
    assert!(t.render().contains("V-COMA/128"));
}

#[test]
fn table3_renders() {
    let rows = table3::run(&cfg());
    assert_eq!(rows.len(), 6);
    let t = table3::render(&rows);
    assert!(t.render().contains("L0-TLB"));
}

#[test]
fn fig9_renders() {
    let panels = fig9::run(&cfg());
    assert_eq!(panels.len(), 6);
    assert!(fig9::render(&panels[0]).render().contains("/DM"));
}

#[test]
fn table4_renders() {
    let t = table4::render(&table4::run(&cfg()));
    assert!(t.render().contains("L0-TLB/8"));
    assert!(t.render().contains("DLB/16"));
}

#[test]
fn fig10_renders() {
    let panels = fig10::run(&cfg());
    assert_eq!(panels.len(), 6);
    let ray = panels.iter().find(|p| p.benchmark == "RAYTRACE").unwrap();
    assert!(fig10::render(ray).render().contains("DLB/8/V2"));
}

#[test]
fn fig11_renders() {
    let t = fig11::render(&fig11::run(&cfg()));
    assert_eq!(t.len(), 6);
}

#[test]
fn ablations_render() {
    let c = cfg();
    let mut rows = ablations::contention(&c);
    rows.extend(ablations::coloring(&c));
    rows.extend(ablations::injection(&c));
    rows.extend(ablations::software_managed(&c));
    assert_eq!(rows.len(), 24);
    assert!(!ablations::render(&rows).render().is_empty());
}
