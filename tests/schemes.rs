//! Cross-crate integration: all six scheme variants run every benchmark
//! end to end on the paper machine.

use vcoma::workloads::{all_benchmarks, PingPong, PrivateStream, UniformRandom};
use vcoma::{all_schemes, Scheme, Simulator};

#[test]
fn every_scheme_runs_every_benchmark() {
    for w in all_benchmarks(0.003) {
        let mut refs = Vec::new();
        for scheme in all_schemes() {
            let report = Simulator::new(scheme).entries(8).run(w.as_ref());
            assert!(report.exec_time() > 0, "{} {}", w.name(), scheme);
            assert!(report.total_refs() > 0, "{} {}", w.name(), scheme);
            refs.push(report.total_refs());
        }
        // The processor reference stream is scheme-independent.
        assert!(
            refs.windows(2).all(|w| w[0] == w[1]),
            "{}: reference counts differ across schemes: {refs:?}",
            w.name()
        );
    }
}

#[test]
fn private_data_stays_local_in_steady_state() {
    // A private streaming workload, once warm, generates no remote stalls
    // in any scheme with a virtually-indexed AM (no capacity pressure at
    // this size) — and almost none in the physical ones.
    let w = PrivateStream { bytes_per_node: 64 << 10, passes: 3 };
    for scheme in [Scheme::L3_TLB, Scheme::V_COMA] {
        let report = Simulator::new(scheme).warmup().run(&w);
        let b = report.aggregate_breakdown();
        assert_eq!(
            b.remote_stall, 0,
            "{scheme}: private data must not stall remotely when warm"
        );
    }
}

#[test]
fn ping_pong_is_remote_bound_everywhere() {
    let w = PingPong { rounds: 200 };
    for scheme in all_schemes() {
        let report = Simulator::new(scheme).run(&w);
        let b = report.aggregate_breakdown();
        assert!(
            b.remote_stall > b.local_stall,
            "{scheme}: write ping-pong must be dominated by coherence stalls"
        );
        assert!(report.protocol().remote_transactions() > 300, "{scheme}");
    }
}

#[test]
fn vcoma_never_uses_a_processor_tlb() {
    // In V-COMA the only translation structure is the home-side DLB; its
    // access count equals the number of home lookups, which is bounded by
    // the protocol transactions, not by the reference count.
    let w = UniformRandom { pages: 128, refs_per_node: 2000, write_fraction: 0.3 };
    let report = Simulator::new(Scheme::V_COMA).run(&w);
    assert!(
        report.translation_accesses_total(0) <= report.protocol().remote_transactions(),
        "DLB accesses ({}) cannot exceed protocol transactions ({})",
        report.translation_accesses_total(0),
        report.protocol().remote_transactions()
    );
    // While L0 translates every single reference.
    let l0 = Simulator::new(Scheme::L0_TLB).run(&w);
    assert_eq!(l0.translation_accesses_total(0), l0.total_refs());
}

#[test]
fn translation_access_counts_are_filtered_down_the_hierarchy() {
    let w = UniformRandom { pages: 64, refs_per_node: 3000, write_fraction: 0.2 };
    // Within the physically-addressed family the protocol dynamics are
    // identical, so filtering is strict: L0 ≥ L1 ≥ L2.
    let mut last = u64::MAX;
    for scheme in [Scheme::L0_TLB, Scheme::L1_TLB, Scheme::L2_TLB_NO_WB] {
        let report = Simulator::new(scheme).run(&w);
        let accesses = report.translation_accesses_total(0);
        assert!(
            accesses <= last,
            "{scheme}: {accesses} accesses, more than the level above ({last})"
        );
        last = accesses;
    }
    // L3 and V-COMA use page coloring / virtual homes, which perturbs the
    // coherence dynamics slightly; allow a small band against L0 while
    // still requiring deep filtering relative to the top of the hierarchy.
    let l0 = Simulator::new(Scheme::L0_TLB).run(&w).translation_accesses_total(0);
    for scheme in [Scheme::L3_TLB, Scheme::V_COMA] {
        let accesses = Simulator::new(scheme).run(&w).translation_accesses_total(0);
        assert!(
            accesses <= l0,
            "{scheme}: {accesses} accesses, more than L0's {l0}"
        );
    }
}
