//! Streaming replay equivalence: pulling ops lazily from a workload's
//! [`OpSource`] cursors must be indistinguishable — down to the debug
//! rendering of the whole report — from building the traces up front,
//! and the engine's trace-shape failures must surface as [`SimError`]
//! values through the facade instead of panics.

use vcoma::workloads::{all_benchmarks, PingPong, PrivateStream, UniformRandom, Workload};
use vcoma::{
    sources_from_traces, MachineConfig, Op, OpSource, Scheme, SimError, Simulator, SyncId,
    all_schemes,
};

/// The paper's six benchmarks at smoke scale plus the three
/// micro-workloads.
fn every_workload() -> Vec<Box<dyn Workload>> {
    let mut ws = all_benchmarks(0.01);
    ws.push(Box::new(UniformRandom { pages: 64, refs_per_node: 500, write_fraction: 0.3 }));
    ws.push(Box::new(PrivateStream { bytes_per_node: 64 << 10, passes: 1 }));
    ws.push(Box::new(PingPong { rounds: 400 }));
    ws
}

#[test]
fn sources_concatenate_to_the_generated_traces() {
    let cfg = MachineConfig::paper_baseline();
    for w in every_workload() {
        let eager = w.generate(&cfg);
        let streamed: Vec<Vec<Op>> = w
            .sources(&cfg)
            .iter_mut()
            .map(|s| std::iter::from_fn(|| s.next_op()).collect())
            .collect();
        assert_eq!(eager, streamed, "{}", w.name());
    }
}

#[test]
fn streaming_reports_match_materialized_reports_for_every_workload() {
    for w in every_workload() {
        let sim = Simulator::new(Scheme::V_COMA).seed(42).warmup();
        let streamed = sim.run(w.as_ref());
        let built = sim.clone().materialized().run(w.as_ref());
        assert_eq!(format!("{streamed:?}"), format!("{built:?}"), "{}", w.name());
    }
}

#[test]
fn streaming_matches_materialized_for_every_scheme() {
    let w = UniformRandom { pages: 128, refs_per_node: 800, write_fraction: 0.4 };
    for scheme in all_schemes() {
        let sim = Simulator::new(scheme).entries(8).seed(7);
        let streamed = sim.run(&w);
        let built = sim.clone().materialized().run(&w);
        assert_eq!(format!("{streamed:?}"), format!("{built:?}"), "{scheme}");
    }
}

/// A workload whose fixed traces park node 0 at a barrier no one else
/// reaches — the facade must report the deadlock, not hang or panic.
struct Unbalanced;

impl Workload for Unbalanced {
    fn name(&self) -> &'static str {
        "UNBALANCED"
    }

    fn params(&self) -> String {
        String::new()
    }

    fn shared_mb(&self) -> f64 {
        0.0
    }

    fn sources(&self, cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        let mut traces = vec![Vec::new(); cfg.nodes as usize];
        traces[0].push(Op::Barrier(SyncId(0)));
        sources_from_traces(traces)
    }
}

#[test]
fn missing_barrier_participant_surfaces_as_a_deadlock_error() {
    for sim in [Simulator::new(Scheme::L0_TLB).tiny(), Simulator::new(Scheme::L0_TLB).tiny().materialized()]
    {
        match sim.try_run(&Unbalanced) {
            Err(SimError::Deadlock { parked }) => assert_eq!(parked, vec![0]),
            other => panic!("expected a deadlock error, got {other:?}"),
        }
    }
}

/// A workload that yields the wrong number of per-node sources.
struct WrongArity;

impl Workload for WrongArity {
    fn name(&self) -> &'static str {
        "WRONG-ARITY"
    }

    fn params(&self) -> String {
        String::new()
    }

    fn shared_mb(&self) -> f64 {
        0.0
    }

    fn sources(&self, _cfg: &MachineConfig) -> Vec<Box<dyn OpSource>> {
        sources_from_traces(vec![vec![Op::Compute(1)]])
    }
}

#[test]
fn wrong_source_count_surfaces_as_bad_traces() {
    for sim in [Simulator::new(Scheme::V_COMA).tiny(), Simulator::new(Scheme::V_COMA).tiny().materialized()]
    {
        match sim.try_run(&WrongArity) {
            Err(SimError::BadTraces { got, want }) => {
                assert_eq!((got, want), (1, 4));
            }
            other => panic!("expected a bad-traces error, got {other:?}"),
        }
    }
}
