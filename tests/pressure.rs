//! Figure-11 claims: V-COMA's global-page-set pressure is low and
//! near-uniform for the paper's workloads, and the machinery detects
//! deliberately skewed layouts.

use vcoma::vm::AddressSpaceLayout;
use vcoma::workloads::TraceBuilder;
use vcoma::{MachineConfig, Scheme, Simulator};
use vcoma_experiments::{fig11, ExperimentConfig};

#[test]
fn paper_workloads_have_near_uniform_pressure() {
    let rows = fig11::run(&ExperimentConfig::smoke().with_scale(0.02));
    for r in &rows {
        assert!(r.mean > 0.0, "{}", r.benchmark);
        assert!(
            r.max < 1.0,
            "{}: some global page set is saturated (max {})",
            r.benchmark,
            r.max
        );
        assert!(
            r.cv < 2.0,
            "{}: pressure profile too skewed (cv {:.3})",
            r.benchmark,
            r.cv
        );
    }
}

#[test]
fn skewed_virtual_layout_is_visible_in_the_profile() {
    // A pathological layout that puts every page in the same global page
    // set (stride = colors × page size) must show up as a highly
    // non-uniform profile — the §6 danger case.
    let machine = MachineConfig::paper_baseline();
    let stride = machine.global_page_sets() * machine.page_size;
    let mut b = TraceBuilder::new(machine.nodes, 99);
    let mut layout = AddressSpaceLayout::new(0x4000_0000);
    let region = layout.region("skewed", 64 * stride, machine.page_size).unwrap();
    for n in 0..machine.nodes as usize {
        for i in 0..64u64 {
            b.read(n, region.addr(i * stride));
        }
    }
    let report = Simulator::new(Scheme::V_COMA).run_traces(b.into_traces());
    let p = report.pressure();
    assert!(
        p.coefficient_of_variation() > 5.0,
        "a single-color layout must give an extreme profile (cv {:.2})",
        p.coefficient_of_variation()
    );
    assert!(p.pressure(0) > 0.0 || p.max() > 0.0);
}

#[test]
fn pressure_counts_match_touched_pages() {
    let machine = MachineConfig::paper_baseline();
    let mut b = TraceBuilder::new(machine.nodes, 1);
    let mut layout = AddressSpaceLayout::new(0x4000_0000);
    // 256 pages: exactly one per global page set.
    let region = layout
        .region("uniform", machine.global_page_sets() * machine.page_size, machine.page_size)
        .unwrap();
    for i in 0..machine.global_page_sets() {
        b.read(0, region.addr(i * machine.page_size));
    }
    let report = Simulator::new(Scheme::V_COMA).run_traces(b.into_traces());
    let p = report.pressure();
    let expected = 1.0 / machine.page_slots_per_global_set() as f64;
    for set in 0..machine.global_page_sets() {
        assert!(
            (p.pressure(set) - expected).abs() < 1e-12,
            "set {set}: pressure {} != {expected}",
            p.pressure(set)
        );
    }
    assert_eq!(p.coefficient_of_variation(), 0.0);
}
