//! Worker-count invariance for intra-run sharding.
//!
//! The epoch-barrier scheduler's whole contract is that `intra_jobs` is
//! an execution strategy, never a model parameter: the report, the merged
//! metrics snapshot (as JSON) and the transaction-trace snapshot must be
//! byte-identical at 1, 2, 3 or 8 workers, on every scheme, with fault
//! injection and causal tracing enabled. This suite is the intra-run
//! counterpart of `parallel_determinism.rs` (which pins the sweep-level
//! `--jobs` flag).
//!
//! It also carries the scale-up golden fixtures: a 64-node and a 256-node
//! smoke run are snapshotted byte-exactly under `tests/golden/` *from the
//! sharded engine*, and each is asserted equal to the serial engine's
//! summary first. To regenerate after an intentional behaviour change:
//!
//! ```text
//! VCOMA_BLESS=1 cargo test -p vcoma-integration --test intra_run_determinism
//! ```

use std::fs;
use std::path::PathBuf;
use vcoma::faults::FaultPlan;
use vcoma::workloads::{PingPong, UniformRandom};
use vcoma::{all_schemes, paper_schemes, MachineConfig, Scheme, SimReport, Simulator};

/// Everything a run can observably produce: the full report (config,
/// per-node stats, protocol and net counters, pressure profile), the
/// merged metrics snapshot rendered as JSON, and the trace snapshot.
fn fingerprint(r: &SimReport) -> String {
    let metrics =
        vcoma::metrics::json::to_json_pretty(r.metrics()).expect("metrics snapshot serializes");
    format!("report: {r:?}\nmetrics: {metrics}\ntrace: {:?}\n", r.trace())
}

/// A fully instrumented simulator: fault plan, coherence auditor and
/// causal tracing all armed, so the invariance claim covers the
/// observability machinery too.
fn instrumented(scheme: Scheme, intra_jobs: usize) -> Simulator {
    Simulator::new(scheme)
        .tiny()
        .intra_jobs(intra_jobs)
        .fault_plan(FaultPlan::parse("drop=0.01,dup=0.005,delay=32,nack=0.02").unwrap())
        .audit()
        .trace(7, 256)
}

#[test]
fn every_scheme_is_invariant_across_worker_counts_with_faults_and_tracing() {
    let w = UniformRandom { pages: 64, refs_per_node: 400, write_fraction: 0.4 };
    for scheme in all_schemes() {
        let serial = instrumented(scheme, 1).try_run(&w).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(serial.trace().is_some(), "{scheme}: tracing must be armed for this suite");
        let baseline = fingerprint(&serial);
        for jobs in [2, 3, 8] {
            let sharded = instrumented(scheme, jobs)
                .try_run(&w)
                .unwrap_or_else(|e| panic!("{scheme} intra_jobs={jobs}: {e}"));
            assert!(
                baseline == fingerprint(&sharded),
                "{scheme}: intra_jobs={jobs} diverged from the serial engine \
                 (report, metrics JSON or trace snapshot)"
            );
        }
    }
}

#[test]
fn sync_heavy_workload_is_invariant_across_worker_counts() {
    // Ping-pong maximises cross-node ordering sensitivity: every epoch's
    // barrier must replay the serial interleaving exactly.
    let w = PingPong { rounds: 300 };
    let serial = fingerprint(&instrumented(Scheme::V_COMA, 1).try_run(&w).unwrap());
    for jobs in [2, 8] {
        let sharded = fingerprint(&instrumented(Scheme::V_COMA, jobs).try_run(&w).unwrap());
        assert!(serial == sharded, "PingPong diverged at intra_jobs={jobs}");
    }
}

// ---------------------------------------------------------------------------
// Scale-up goldens: 64 and 256 nodes.
// ---------------------------------------------------------------------------

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("VCOMA_BLESS").is_some() {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&path, actual).expect("write fixture");
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {} ({e}); create it with VCOMA_BLESS=1", path.display())
    });
    assert!(
        expected == actual,
        "golden mismatch for {name}; if the change is intentional, regenerate with\n\
         VCOMA_BLESS=1 cargo test -p vcoma-integration --test intra_run_determinism\n\
         --- expected ---\n{expected}--- actual ---\n{actual}"
    );
}

/// One compact, fully deterministic line per scheme: enough to pin the
/// timing model and every counter without snapshotting 256 node reports.
fn summary_line(scheme: Scheme, r: &SimReport) -> String {
    format!(
        "{scheme} exec={} refs={} writes={} msgs={} bytes={} swaps={} breakdown={:?} fine={:?}\n",
        r.exec_time(),
        r.total_refs(),
        r.total_writes(),
        r.net_msgs(),
        r.net_bytes(),
        r.swap_outs(),
        r.aggregate_breakdown(),
        r.aggregate_fine(),
    )
}

/// Runs the scale-up smoke workload on `nodes` nodes under both engines,
/// asserts they agree byte-for-byte, and returns the sharded summary.
///
/// The roster is explicit so the pre-plugin-API fixtures (which record the
/// paper's six schemes) stay byte-identical while the post-1998 schemes
/// pin their own fixture.
fn scale_up_summary(
    schemes: &[Scheme],
    nodes: u64,
    refs_per_node: u64,
    intra_jobs: usize,
) -> String {
    let machine = MachineConfig::builder().nodes(nodes).build().expect("scale-up machine");
    let w = UniformRandom { pages: 2 * nodes, refs_per_node, write_fraction: 0.3 };
    let mut out = String::new();
    for &scheme in schemes {
        let run = |jobs: usize| {
            // Tracing armed so the byte-diff covers spans at scale too;
            // tracing is inert, so the golden summary lines don't move.
            Simulator::new(scheme)
                .machine(machine.clone())
                .intra_jobs(jobs)
                .trace(17, 128)
                .try_run(&w)
                .unwrap_or_else(|e| panic!("{scheme} @ {nodes} nodes: {e}"))
        };
        let serial = run(1);
        let sharded = run(intra_jobs);
        assert!(
            fingerprint(&serial) == fingerprint(&sharded),
            "{scheme} @ {nodes} nodes: intra_jobs={intra_jobs} diverged from serial"
        );
        out.push_str(&summary_line(scheme, &sharded));
    }
    out
}

#[test]
fn node64_smoke_matches_golden_and_serial() {
    check("intra_run_64node_smoke.txt", &scale_up_summary(&paper_schemes(), 64, 200, 8));
}

#[test]
fn node256_smoke_matches_golden_and_serial() {
    // The acceptance bar for the sharded engine: a 256-node run at
    // intra_jobs=8 byte-identical to intra_jobs=1.
    check("intra_run_256node_smoke.txt", &scale_up_summary(&paper_schemes(), 256, 60, 8));
}

#[test]
fn post1998_schemes_node64_smoke_matches_golden_and_serial() {
    // The plugin schemes get the same scale-up bar as the paper's six,
    // pinned in their own fixture.
    let extras: Vec<Scheme> =
        all_schemes().into_iter().filter(|s| !s.is_paper()).collect();
    assert!(!extras.is_empty(), "the registry ships post-1998 schemes");
    check("intra_run_64node_post1998_smoke.txt", &scale_up_summary(&extras, 64, 200, 8));
}
