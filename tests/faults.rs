//! End-to-end fault-injection guarantees: faulty runs complete under the
//! auditor on every scheme, the recovery work is visible in the protocol
//! stats and the metrics snapshot, zero-probability plans are byte-inert,
//! and fault runs are a pure function of `(plan, seed)`.

use vcoma::faults::FaultPlan;
use vcoma::workloads::UniformRandom;
use vcoma::{all_schemes, Scheme, Simulator};

fn workload() -> UniformRandom {
    UniformRandom { pages: 96, refs_per_node: 800, write_fraction: 0.4 }
}

#[test]
fn every_scheme_survives_a_lossy_crossbar_with_the_auditor_armed() {
    let plan = FaultPlan::parse("drop=0.01,dup=0.005,delay=32,nack=0.02").unwrap();
    for scheme in all_schemes() {
        let report = Simulator::new(scheme)
            .tiny()
            .fault_plan(plan.clone())
            .audit()
            .try_run(&workload())
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_eq!(report.total_refs(), 4 * 800, "{scheme}");
        let p = report.protocol();
        assert!(
            p.fault_recoveries() + p.nacks > 0,
            "{scheme}: the plan must trip visible recovery work"
        );
        assert!(
            report.net().dropped_msgs + report.net().duplicated_msgs > 0,
            "{scheme}: the crossbar must record fault events"
        );
        // Recovery work also lands in the merged metrics snapshot.
        let m = report.metrics();
        assert!(
            m.counter("fault.retry")
                + m.counter("fault.nack")
                + m.counter("fault.link_retry")
                > 0,
            "{scheme}: fault counters missing from the metrics snapshot"
        );
        // And recovery time is attributed to its own latency category.
        assert!(report.aggregate_fine().fault > 0, "{scheme}");
    }
}

#[test]
fn zero_probability_plan_is_byte_inert() {
    for scheme in all_schemes() {
        let plain = Simulator::new(scheme).tiny().run(&workload());
        let zeroed = Simulator::new(scheme)
            .tiny()
            .fault_plan(FaultPlan::default())
            .try_run(&workload())
            .unwrap();
        assert_eq!(plain.exec_time(), zeroed.exec_time(), "{scheme}");
        assert_eq!(plain.protocol(), zeroed.protocol(), "{scheme}");
        assert_eq!(plain.net(), zeroed.net(), "{scheme}");
        assert_eq!(plain.aggregate_fine(), zeroed.aggregate_fine(), "{scheme}");
        assert_eq!(plain.metrics(), zeroed.metrics(), "{scheme}");
    }
}

#[test]
fn fault_runs_are_a_pure_function_of_plan_and_seed() {
    let plan = FaultPlan::parse("drop=0.02,nack=0.05").unwrap().with_seed(0xBEEF);
    let run = || {
        Simulator::new(Scheme::V_COMA)
            .tiny()
            .fault_plan(plan.clone())
            .audit()
            .try_run(&workload())
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.exec_time(), b.exec_time());
    assert_eq!(a.protocol(), b.protocol());
    assert_eq!(a.net(), b.net());
    assert_eq!(a.metrics(), b.metrics());
}

#[test]
fn fault_seed_changes_the_fault_pattern_but_not_the_references() {
    let plan = FaultPlan::parse("drop=0.03,nack=0.05").unwrap();
    let run = |seed: u64| {
        Simulator::new(Scheme::L0_TLB)
            .tiny()
            .fault_plan(plan.clone().with_seed(seed))
            .try_run(&workload())
            .unwrap()
    };
    let (a, b) = (run(1), run(2));
    assert_eq!(a.total_refs(), b.total_refs());
    // Different fault seeds pick different victims (almost surely).
    assert_ne!(
        (a.exec_time(), a.protocol().retries, a.net().dropped_msgs),
        (b.exec_time(), b.protocol().retries, b.net().dropped_msgs),
        "fault decisions must be keyed on the plan seed"
    );
}
