//! Scheme shootout: all six translation-scheme variants on one benchmark.
//!
//! Prints a per-scheme table of translation misses, miss rate, execution
//! time and time breakdown — a one-benchmark miniature of the paper's
//! Figure 8 / Table 2 / Figure 10 story.
//!
//! ```text
//! cargo run --release --example scheme_shootout [-- BENCHMARK [SCALE]]
//! ```
//! `BENCHMARK` is one of RADIX, FFT, FMM, OCEAN, RAYTRACE, BARNES
//! (default OCEAN); `SCALE` replays that fraction of the workload
//! (default 0.1).

use vcoma::workloads::{by_name, Workload};
use vcoma::{all_schemes, Simulator};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "OCEAN".to_string());
    let scale: f64 = args.next().map(|s| s.parse().expect("SCALE must be a number")).unwrap_or(0.1);
    let workload: Box<dyn Workload> =
        by_name(&name, scale).unwrap_or_else(|| panic!("unknown benchmark {name}"));

    println!(
        "{} ({}) at scale {scale}, 32 nodes, 8-entry fully-associative TLB/DLB\n",
        workload.name(),
        workload.params()
    );
    println!(
        "{:<16} {:>9} {:>10} {:>9} {:>9} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "xl-acc", "xl-misses", "rate %", "remote", "exec cycles", "busy", "sync",
        "local", "remote", "xlat"
    );

    for scheme in all_schemes() {
        let report = Simulator::new(scheme).entries(8).run(workload.as_ref());
        let b = report.mean_breakdown();
        println!(
            "{:<16} {:>9} {:>10} {:>9.3} {:>9} {:>12} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
            scheme.label(),
            report.translation_accesses_total(0),
            report.translation_misses_total(0),
            100.0 * report.translation_miss_rate(0),
            report.protocol().remote_transactions(),
            report.exec_time(),
            b.busy,
            b.sync,
            b.local_stall,
            b.remote_stall,
            b.translation
        );
    }

    println!(
        "\nExpected shape (paper Fig. 8): misses fall monotonically from L0-TLB to\n\
         V-COMA, except that L2-TLB's writeback translations can push it above\n\
         L2-TLB/no_wback (and sometimes above L1) on streaming workloads."
    );
}
