//! Custom workload: build your own trace with `TraceBuilder` and run it.
//!
//! Shows the lower-level API: regions carved from the virtual address
//! space, hand-written per-node access patterns, locks and barriers, and a
//! direct `Machine` run — useful when the six packaged benchmarks don't
//! match the pattern you want to study.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use vcoma::vm::AddressSpaceLayout;
use vcoma::workloads::TraceBuilder;
use vcoma::{MachineConfig, Scheme, Simulator};

fn main() {
    let machine = MachineConfig::paper_baseline();

    // A tiny "work stealing" pattern: a shared task counter guarded by a
    // lock, a shared input table read by everyone, and per-node result
    // buffers written privately.
    let mut layout = AddressSpaceLayout::new(0x2000_0000);
    let table = layout.region("table", 2 << 20, machine.page_size).expect("layout");
    let results = layout
        .per_node_regions("results", machine.nodes, 64 << 10, machine.page_size)
        .expect("layout");
    let counter = layout.region("counter", machine.page_size, machine.page_size).expect("layout");

    let mut b = TraceBuilder::new(machine.nodes, 1234);
    b.think = 2;
    for (n, result) in results.iter().enumerate() {
        for _task in 0..200 {
            // Claim a task.
            b.critical_section(n, 0, |b, n| {
                b.read(n, counter.addr(0));
                b.write(n, counter.addr(0));
            });
            // Read a random stripe of the shared table, write local result.
            let off = b.rng().gen_range(table.size / 64) * 64;
            for k in 0..4 {
                b.read(n, table.addr((off + k * 64) % table.size));
            }
            let r = b.rng().gen_range(result.size / 64) * 64;
            b.write(n, result.addr(r));
        }
    }
    b.barrier();
    let traces = b.into_traces();

    println!("custom work-stealing workload: {} total ops\n", traces.iter().map(Vec::len).sum::<usize>());
    for scheme in [Scheme::L0_TLB, Scheme::L3_TLB, Scheme::V_COMA] {
        let report = Simulator::new(scheme).entries(8).run_traces(traces.clone());
        println!(
            "{:<8} exec {:>10} cycles | translation misses {:>6} | sync {:>8.0} cyc/node",
            scheme.label(),
            report.exec_time(),
            report.translation_misses_total(0),
            report.mean_breakdown().sync,
        );
    }
}
