//! Quickstart: simulate one benchmark under the classic TLB design and
//! under V-COMA, and compare the translation overhead.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use vcoma::workloads::{Radix, Workload};
use vcoma::{Scheme, Simulator};

fn main() {
    // The paper's RADIX benchmark, replaying 10 % of the keys so the
    // example finishes in a couple of seconds. The arrays keep their full
    // size, so the translation behaviour keeps its shape.
    let workload = Radix::paper().scaled(0.1);
    println!(
        "workload: {} ({}), nominal footprint {:.2} MB\n",
        workload.name(),
        workload.params(),
        workload.shared_mb()
    );

    for scheme in [Scheme::L0_TLB, Scheme::V_COMA] {
        // 32-node paper machine, 8-entry fully-associative TLB/DLB.
        let report = Simulator::new(scheme).entries(8).run(&workload);
        let b = report.mean_breakdown();
        println!("{scheme}:");
        println!("  references           {:>12}", report.total_refs());
        println!(
            "  translation misses   {:>12}  ({:.3}% of references)",
            report.translation_misses_total(0),
            100.0 * report.translation_miss_rate(0)
        );
        println!("  execution time       {:>12} cycles", report.exec_time());
        println!(
            "  per-node breakdown   busy {:.0} | sync {:.0} | local {:.0} | remote {:.0} | xlat {:.0}\n",
            b.busy, b.sync, b.local_stall, b.remote_stall, b.translation
        );
    }

    println!(
        "V-COMA's DLB sits at the home node, is shared by all 32 processors, and\n\
         is consulted only by coherence transactions - so its miss count collapses\n\
         relative to a same-sized private TLB (the paper's sharing + prefetching\n\
         effects)."
    );
}
