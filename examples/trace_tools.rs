//! Trace tooling: generate a benchmark trace, analyse it, archive it, and
//! replay the archived copy.
//!
//! ```text
//! cargo run --release --example trace_tools -- [BENCHMARK] [SCALE]
//! ```

use vcoma::workloads::{by_name, load_traces, save_traces, TraceAnalysis};
use vcoma::{MachineConfig, Scheme, Simulator};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "BARNES".to_string());
    let scale: f64 = args.next().map(|s| s.parse().expect("SCALE")).unwrap_or(0.02);
    let machine = MachineConfig::paper_baseline();
    let workload = by_name(&name, scale).unwrap_or_else(|| panic!("unknown benchmark {name}"));

    // Generate and analyse.
    let traces = workload.generate(&machine);
    let analysis = TraceAnalysis::of(&traces, &machine);
    println!("{} at scale {scale}:", workload.name());
    println!("  refs           {:>12} ({:.1}% writes)", analysis.refs(), 100.0 * analysis.write_fraction());
    println!("  footprint      {:>9.2} MB ({} pages)", analysis.footprint_mb(machine.page_size), analysis.pages);
    println!(
        "  sharing        {:>12.2} mean nodes/page, {} write-shared pages",
        analysis.mean_sharing_degree(),
        analysis.write_shared_pages
    );
    println!("  sync           {:>12} barriers, {} lock acquires", analysis.barriers, analysis.lock_acquires);

    // Archive to the text format and reload.
    let text = save_traces(&traces);
    println!("  archive        {:>9.2} MB of trace text", text.len() as f64 / (1 << 20) as f64);
    let reloaded = load_traces(&text).expect("own archive parses");
    assert_eq!(reloaded, traces, "round trip must be lossless");

    // Replay the reloaded copy.
    let report = Simulator::new(Scheme::V_COMA).run_traces(reloaded);
    println!(
        "  replay         {:>12} cycles under V-COMA, {} DLB misses",
        report.exec_time(),
        report.translation_misses_total(0)
    );
}
