//! RADIX case study: sweep the TLB/DLB size and watch the sharing and
//! prefetching effects.
//!
//! The paper singles RADIX out (§5.2): each pass writes a key into a large
//! output array shared by all nodes, so a private TLB sees no working set
//! below the array size (~512 pages), while the shared DLB at the home
//! node is refilled *once per page machine-wide* — a 16-entry DLB beats a
//! 512-entry per-node TLB.
//!
//! ```text
//! cargo run --release --example radix_study
//! ```

use vcoma::workloads::Radix;
use vcoma::{Scheme, Simulator, TlbOrg};

fn main() {
    let sizes: Vec<u64> = vec![8, 16, 32, 64, 128, 256, 512];
    let workload = Radix::paper().scaled(0.1);

    // One run per scheme: the first spec is the timing-affecting primary,
    // the rest are passive shadow TLB/DLBs that observe the same stream.
    let specs: Vec<(u64, TlbOrg)> =
        sizes.iter().map(|&s| (s, TlbOrg::FullyAssociative)).collect();

    println!("RADIX translation misses per node vs TLB/DLB size (paper Fig. 8 top-left)\n");
    print!("{:<16}", "scheme");
    for s in &sizes {
        print!("{s:>10}");
    }
    println!();

    for scheme in [Scheme::L0_TLB, Scheme::L2_TLB, Scheme::L3_TLB, Scheme::V_COMA] {
        let report = Simulator::new(scheme).specs(specs.clone()).run(&workload);
        print!("{:<16}", scheme.label());
        for bank in 0..sizes.len() {
            print!("{:>10.0}", report.translation_misses_per_node(bank));
        }
        println!();
    }

    println!(
        "\nReading the table: the L0/L2 rows stay almost flat until the TLB reaches\n\
         the output array's page count, then drop (no intermediate working set);\n\
         the V-COMA row is orders of magnitude lower at *every* size because DLB\n\
         entries are shared by all writers of a page and prefetch for each other."
    );
}
