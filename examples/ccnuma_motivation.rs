//! CC-NUMA motivation (paper §2, Figure 1): why the in-memory SHARED-TLB
//! that inspired V-COMA does *not* work in a conventional CC-NUMA.
//!
//! In CC-NUMA, placing translation at the home node means the home is
//! selected by the virtual address, so the OS loses page placement and
//! migration: a node's private working set gets scattered across the
//! machine and "capacity misses are remote most of the time" — whereas in
//! a COMA the attraction memory migrates the data to its user, which is
//! exactly the property V-COMA exploits.
//!
//! ```text
//! cargo run --release --example ccnuma_motivation
//! ```

use vcoma::sim::ccnuma::{NumaMachine, NumaScheme};
use vcoma::{MachineConfig, Op, Scheme, SimConfig, VAddr};

/// Every node streams repeatedly over its own private working set — the
/// pattern first-touch placement is built for.
fn private_working_sets(nodes: u64, bytes_per_node: u64, passes: u64) -> Vec<Vec<Op>> {
    let mut traces = vec![Vec::new(); nodes as usize];
    for (i, t) in traces.iter_mut().enumerate() {
        let base = 0x1000_0000 + i as u64 * (bytes_per_node * 2);
        for _ in 0..passes {
            for off in (0..bytes_per_node).step_by(64) {
                t.push(Op::Read(VAddr::new(base + off)));
                if off % 256 == 0 {
                    t.push(Op::Write(VAddr::new(base + off)));
                }
            }
        }
    }
    traces
}

fn main() {
    let machine = MachineConfig::paper_baseline();
    // 256 KB per node: four times the SLC, so capacity misses are
    // plentiful.
    let traces = private_working_sets(machine.nodes, 256 << 10, 3);
    let cfg = SimConfig::new(machine, Scheme::L0_TLB).with_entries(32);

    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "scheme", "exec cycles", "xl-misses", "local-mem", "remote-mem", "remote %"
    );
    for scheme in
        [NumaScheme::L0Tlb, NumaScheme::L1Tlb, NumaScheme::L2Tlb, NumaScheme::SharedTlb]
    {
        let report = NumaMachine::new(cfg.clone(), scheme).run(traces.clone());
        println!(
            "{:<12} {:>12} {:>10} {:>10} {:>10} {:>9.1}",
            scheme.label(),
            report.exec_time,
            report.translation_misses,
            report.local_mem_accesses,
            report.remote_mem_accesses,
            100.0 * report.remote_fraction()
        );
    }
    println!(
        "\nWith first-touch placement (L0/L1/L2) the private capacity misses stay\n\
         local; under SHARED-TLB the homes are virtual-address-hashed, so ~31/32\n\
         of them cross the network — the paper's reason to seek a COMA instead,\n\
         where migration makes the same idea (home-side translation) win."
    );
}
