//! Pressure map: the global-page-set memory-pressure profile of Figure 11.
//!
//! V-COMA has no control over which global set a page lands in — the
//! virtual address decides. The paper's §6 concern is that virtual-layout
//! conflicts could saturate some sets; Figure 11 shows the profiles are in
//! fact near-uniform. This example prints an ASCII profile per benchmark.
//!
//! ```text
//! cargo run --release --example pressure_map
//! ```

use vcoma::workloads::all_benchmarks;
use vcoma::{Scheme, Simulator};

fn main() {
    println!("global-page-set pressure profiles under V-COMA (paper Fig. 11)\n");
    for workload in all_benchmarks(0.02) {
        let report = Simulator::new(Scheme::V_COMA).run(workload.as_ref());
        let p = report.pressure();
        // Bucket the 256 global page sets into 32 columns for display.
        let cols = 32;
        let per = p.sets() / cols;
        let buckets: Vec<f64> = (0..cols)
            .map(|c| {
                (0..per).map(|i| p.pressure((c * per + i) as u64)).sum::<f64>() / per as f64
            })
            .collect();
        let peak = p.max().max(1e-9);
        let bar: String = buckets
            .iter()
            .map(|&b| {
                let i = ((b / peak) * 7.0).round() as usize;
                [' ', '.', ':', '-', '=', '+', '*', '#'][i.min(7)]
            })
            .collect();
        println!(
            "{:<9} |{bar}|  mean {:.3}  max {:.3}  cv {:.3}",
            workload.name(),
            p.mean(),
            p.max(),
            p.coefficient_of_variation()
        );
    }
    println!(
        "\ncv is the coefficient of variation across the 256 global page sets;\n\
         small values confirm the paper's 'very uniform pressure on every\n\
         global set' claim — program locality in the virtual space spreads\n\
         pages evenly over the colors without any OS intervention."
    );
}
